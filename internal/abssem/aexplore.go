package abssem

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"psa/internal/absdom"
	"psa/internal/lang"
	"psa/internal/metrics"
	"psa/internal/sched"
	"psa/internal/sem"
)

// Options configures an abstract interpretation.
//
// The integer limits follow one convention: the zero value selects the
// documented default (so Options{} works), and a NEGATIVE value is the
// explicit request for the boundary value 0, which zero-value defaulting
// would otherwise make unreachable. Package explore's Options follow the
// same audit: there, too, 0 means "default" everywhere, and the only
// meaningful boundary (Workers) already has explicit negative semantics.
type Options struct {
	// Domain is the numeric abstract domain (default absdom.ConstDomain).
	Domain absdom.NumDomain
	// KBirth is the k-limit for birthdate abstraction (default 2).
	// Negative requests k = 0: procedure strings carry no birthdate
	// context at all, so every allocation site folds into one summary.
	KBirth int
	// RecLimit bounds simultaneous activations of one function; deeper
	// recursion is havocked through its static effect summary (default 3).
	// Negative requests the limit 0: every call is havocked immediately.
	RecLimit int
	// ClanFold merges cobegin arms with identical bodies into one
	// abstract process (§6.2, McDowell's clans).
	ClanFold bool
	// MaxStates bounds the number of abstract configurations (default
	// 1<<18 for zero or negative values; there is no meaningful bound
	// below 1). A truncated run still reports invariants, terminals, and
	// footprints for the prefix it explored — see Result.Truncated.
	MaxStates int
	// WidenAfter is the number of joins at one control point before
	// widening kicks in (default 4). Negative requests 0: widening on the
	// first rejoin, the fastest-converging (coarsest) iteration strategy.
	WidenAfter int
	// Workers > 1 runs the fixpoint with that many goroutines expanding
	// each worklist round in parallel; 0 or 1 is sequential and a
	// negative count uses GOMAXPROCS. Every Result field and every
	// deterministic metrics counter is bit-identical to the sequential
	// engine's for any worker count: joins, widening decisions, dedup,
	// and queue order stay in a serial per-round merge (see aparallel.go).
	Workers int
	// Sched selects the parallel execution strategy: sched.Leveled (the
	// zero value) runs fan-out/serial-merge rounds with a barrier per
	// round (aparallel.go); sched.DepDriven runs the dependency-driven
	// pipeline (adep.go), which merges each worklist entry as soon as its
	// predecessors in sequential discovery order have merged — no level
	// barrier. Like Workers and Pool, Sched is execution-only: every
	// Result field and every deterministic metrics counter is identical
	// under either scheduler, so it is excluded from analysis cache keys.
	// Ignored on sequential runs except that DepDriven with Workers == 1
	// runs the dependency-driven engine on a single worker (a genuine
	// two-goroutine pipeline), where Leveled with Workers == 1 stays
	// sequential.
	Sched sched.Scheduler
	// Pool, when non-nil, is the shared scheduler pool (internal/sched)
	// the parallel fixpoint runs on: its worker count governs
	// scheduling, the caller keeps ownership (Analyze never closes it),
	// and consecutive Explore/Analyze calls may reuse it to amortize
	// worker startup. Nil makes each parallel run create a private pool
	// sized by Workers. Ignored on sequential runs.
	Pool *sched.Pool
	// CollectFootprints records per-statement abstract access footprints
	// (Result.FootprintOf / Conflicts) — the §5.2 dependences computed
	// from the abstract semantics with no concrete exploration.
	CollectFootprints bool
	// Summaries, when non-nil, attaches a shared procedure-summary cache:
	// per-visit expansions are served from it when their key matches and
	// recorded into it otherwise, and an edited program invalidates only
	// the entries whose referenced procedures changed (see summary.go and
	// DESIGN.md §13). Execution-only, like Workers/Sched/Pool/Metrics: a
	// cache hit is bit-identical to a fresh computation by construction,
	// so attaching a store (cold or warm) never changes any Result field
	// or deterministic counter, and AbstractKey excludes it.
	Summaries *SummaryStore
	// Metrics, when non-nil, receives worklist/visit counts, join and
	// widening events, and phase wall-clock during the fixpoint
	// iteration. Nil disables instrumentation.
	Metrics *metrics.Registry
}

// fill normalizes the limits: 0 → default, negative → 0 (the explicit
// boundary request the zero-value defaulting would otherwise swallow).
func (o *Options) fill() {
	norm := func(v *int, def int) {
		switch {
		case *v == 0:
			*v = def
		case *v < 0:
			*v = 0
		}
	}
	if o.Domain == nil {
		o.Domain = absdom.ConstDomain{}
	}
	norm(&o.KBirth, 2)
	norm(&o.RecLimit, 3)
	norm(&o.WidenAfter, 4)
	if o.MaxStates <= 0 {
		o.MaxStates = 1 << 18
	}
}

// Normalized returns the options with every limit resolved to the value
// Analyze will actually run with: 0 becomes the documented default,
// negative becomes the boundary 0, and a nil Domain becomes ConstDomain.
// Two Options values that normalize equal configure identical analyses
// (up to the execution-only fields Workers, Sched, Pool, and Metrics,
// which never change results) — the property the pipeline layer's
// options-keyed result cache relies on.
func (o Options) Normalized() Options {
	o.fill()
	return o
}

// Result summarizes an abstract interpretation.
type Result struct {
	// States is the number of distinct abstract configurations (control
	// points after Taylor folding; the quantity of paper Figure 3).
	States int
	// Visits counts worklist processing rounds (cost proxy).
	Visits int
	// Terminal is the join of the stores of all terminal abstract
	// configurations (nil when none was reached).
	Terminal *absdom.Store
	// TerminalCount is the number of terminal abstract configurations.
	TerminalCount int
	// MayError reports that some folded execution may fault.
	MayError bool
	// Truncated reports that MaxStates was hit. The invariants, terminal
	// join, and footprints still cover the explored prefix — they are
	// sound only for the configurations actually reached, not for the
	// program (the fixpoint was cut short), so clients must treat them
	// as partial.
	Truncated bool
	// Cancelled reports that the run's context was cancelled before the
	// fixpoint converged (see AnalyzeContext). The same coherence
	// contract as Truncated holds — collection still runs, so
	// invariants, the terminal join, and footprints cover the explored
	// prefix — but the cut point depends on timing, so cancelled results
	// must never enter options-keyed caches.
	Cancelled bool

	prog *lang.Program
	foot *footRec
	// at maps a statement to the join of the stores of every abstract
	// configuration in which some process is about to execute it: the
	// program-point invariant clients (e.g. the optimization oracle of
	// package apps) query.
	at map[lang.NodeID]*absdom.Store
}

// InvariantAt returns the abstract store holding whenever the statement
// with the given ID is about to execute (nil if never reached).
func (r *Result) InvariantAt(id lang.NodeID) *absdom.Store { return r.at[id] }

// GlobalAt returns the abstract value of the named global at the labeled
// statement (ok=false when the label is unknown or unreached).
func (r *Result) GlobalAt(label, global string) (absdom.Value, bool) {
	s := r.prog.StmtByLabel(label)
	g := r.prog.Global(global)
	if s == nil || g == nil {
		return absdom.Value{}, false
	}
	st := r.at[s.NodeID()]
	if st == nil {
		return absdom.Value{}, false
	}
	return st.Global(g.Index), true
}

// Unreachable returns every statement the abstract interpretation never
// reached, in source order: dead branches of decided conditionals, code
// after constant-false loops, bodies of uncalled procedures. Because the
// abstraction over-approximates, "unreached abstractly" implies
// "unreachable concretely" — a sound dead-code report.
func (r *Result) Unreachable() []lang.Stmt {
	var out []lang.Stmt
	for _, f := range r.prog.Funcs {
		lang.WalkStmts(f.Body, func(s lang.Stmt) {
			if _, reached := r.at[s.NodeID()]; !reached {
				out = append(out, s)
			}
		})
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].NodePos(), out[j].NodePos()
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Col < pj.Col
	})
	return out
}

// GlobalInvariant returns the abstract value of the named global at
// program termination (Bot if the program never terminates abstractly).
func (r *Result) GlobalInvariant(name string) (absdom.Value, bool) {
	g := r.prog.Global(name)
	if g == nil || r.Terminal == nil {
		return absdom.Value{}, false
	}
	return r.Terminal.Global(g.Index), true
}

// aState is the stored value state at one control point.
type aState struct {
	cfg    *AConfig
	visits int
	queued bool
	// changed is the merge sequence number of the last join that grew
	// this state's value component. Only the parallel engines read it
	// (stale-expansion detection); the sequential engine leaves it 0.
	changed int
	// snap is the dependency-driven engine's published snapshot of
	// (cfg, changed): workers expand from whatever pair they load, and
	// the serial merge re-expands when the state grew after the load.
	// Only adep.go touches it; joins there are copy-on-write, so a
	// loaded snapshot is immutable. Unused by the other engines.
	snap atomic.Pointer[absSnap]
}

// absSnap is one immutable (configuration, change-sequence) pair.
type absSnap struct {
	cfg *AConfig
	seq int
}

// newStepCtx builds the per-run context of the abstract semantics.
func newStepCtx(prog *lang.Program, opts Options) *stepCtx {
	sc := &stepCtx{
		prog:    prog,
		dom:     opts.Domain,
		sums:    sem.NewSummaries(prog),
		sharing: lang.AnalyzeSharing(prog),
		kBirth:  opts.KBirth,
		recLim:  opts.RecLimit,
		clan:    opts.ClanFold,
	}
	if opts.CollectFootprints {
		sc.foot = &footRec{m: map[lang.NodeID]map[AbsAccess]bool{}}
	}
	if opts.Summaries != nil {
		sc.sum = opts.Summaries.beginRun(prog, opts, sc.sharing, opts.Metrics)
	}
	return sc
}

// Analyze runs the abstract interpretation of prog to a fixpoint.
func Analyze(prog *lang.Program, opts Options) *Result {
	return AnalyzeContext(context.Background(), prog, opts)
}

// AnalyzeContext is Analyze under a context: cancelling ctx stops the
// fixpoint iteration at the next worklist boundary and returns a
// partial result with Result.Cancelled set. The cut takes the exact
// shape of the MaxStates truncation cut — collection still runs, so the
// invariants, terminal join, and footprints cover the explored prefix,
// and in-flight parallel expansions drain before AnalyzeContext returns
// (no callback or worker touches the result afterwards).
func AnalyzeContext(ctx context.Context, prog *lang.Program, opts Options) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.fill()
	if opts.Workers > 1 || opts.Workers < 0 || (opts.Sched == sched.DepDriven && opts.Workers == 1) {
		if opts.Sched == sched.DepDriven {
			return analyzeDep(ctx, prog, opts)
		}
		return analyzeParallel(ctx, prog, opts)
	}
	// done is nil for a never-cancellable context, keeping the worklist
	// loop's cancellation probe a single nil check.
	done := ctx.Done()
	m := opts.Metrics
	defer m.Phase("abstract")()
	sc := newStepCtx(prog, opts)
	res := &Result{prog: prog, foot: sc.foot}

	init := initialConfig(prog, opts.Domain)
	states := map[ctrlSig]*aState{}
	sig0 := init.signature()
	states[sig0] = &aState{cfg: init, queued: true}
	queue := []ctrlSig{sig0}

fixpoint:
	for len(queue) > 0 {
		if done != nil {
			select {
			case <-done:
				// Cancelled: cut exactly like the MaxStates truncation —
				// fall through to collection so the run still reports
				// invariants, terminals, and footprints for the explored
				// prefix.
				res.Cancelled = true
				break fixpoint
			default:
			}
		}
		m.SetGauge(metrics.QueueLen, int64(len(queue)))
		m.MaxGauge(metrics.MaxFrontier, int64(len(queue)))
		sig := queue[0]
		queue = queue[1:]
		stv := states[sig]
		stv.queued = false
		stv.visits++
		res.Visits++
		m.Inc(metrics.AbsVisits)

		// Expansion goes through expandState — the same per-visit unit the
		// parallel engines fan out and the summary cache memoizes — so all
		// three engines and the cache replay literally identical successor
		// sets (footprints land in per-process scratch and merge here in
		// the same order the parallel serial merges use).
		e := expandState(sc, stv.cfg)
		if len(e.enabled) == 0 {
			continue // terminal; collected after the fixpoint
		}
		for j := range e.enabled {
			sc.foot.merge(e.foots[j])
			for k, succ := range e.succs[j] {
				if succ.Procs == nil {
					// Error witness: no continuation.
					if succ.MayError {
						res.MayError = true
					}
					continue
				}
				if succ.MayError {
					res.MayError = true
				}
				nsig := e.sigs[j][k]
				cur, ok := states[nsig]
				if !ok {
					if len(states) >= opts.MaxStates {
						// Truncated: stop iterating, but still fall
						// through to the collection phase so the run
						// reports invariants, terminals, and footprints
						// for the prefix it explored.
						res.Truncated = true
						break fixpoint
					}
					cur = &aState{cfg: succ.deepCopy()}
					states[nsig] = cur
					cur.queued = true
					queue = append(queue, nsig)
					continue
				}
				widen := cur.visits >= opts.WidenAfter
				m.Inc(metrics.AbsJoins)
				if widen {
					m.Inc(metrics.AbsWidenings)
				}
				if cur.cfg.joinInto(succ, widen) && !cur.queued {
					cur.queued = true
					queue = append(queue, nsig)
				}
			}
		}
	}

	res.collect(states, m)
	sc.sum.publish()
	return res
}

// collect builds the client-facing views over the explored states: the
// per-program-point invariants, the terminal join, and the state count.
// It runs after the fixpoint loop on complete AND truncated runs, and it
// iterates states in sorted signature order so both engines produce the
// same joins in the same order (lattice joins are order-insensitive in
// value, but identical order makes the results bit-identical too).
//
// Stores entering res.at and res.Terminal are cloned on first
// assignment: later joins allocate fresh stores anyway, but the first
// hit used to alias the state table's live configuration store, so a
// client mutating a returned invariant — or a future engine pass
// re-joining a still-queued configuration — could corrupt analysis
// state.
func (res *Result) collect(states map[ctrlSig]*aState, m *metrics.Registry) {
	res.States = len(states)
	m.Add(metrics.AbsStates, int64(len(states)))
	sigs := make([]string, 0, len(states))
	for sig := range states {
		sigs = append(sigs, string(sig))
	}
	sort.Strings(sigs)
	res.at = map[lang.NodeID]*absdom.Store{}
	for _, sig := range sigs {
		stv := states[ctrlSig(sig)]
		for _, p := range stv.cfg.Procs {
			if p.Status != Running {
				continue
			}
			if s := nextStmt(p); s != nil {
				if cur, ok := res.at[s.NodeID()]; ok {
					res.at[s.NodeID()] = cur.Join(stv.cfg.Store)
				} else {
					res.at[s.NodeID()] = stv.cfg.Store.Clone()
				}
			}
		}
		if len(stv.cfg.enabled()) == 0 {
			res.TerminalCount++
			if res.Terminal == nil {
				res.Terminal = stv.cfg.Store.Clone()
			} else {
				res.Terminal = res.Terminal.Join(stv.cfg.Store)
			}
			if stv.cfg.MayError {
				res.MayError = true
			}
		}
	}
}

// initialConfig builds the abstract initial configuration.
func initialConfig(prog *lang.Program, d absdom.NumDomain) *AConfig {
	main := prog.Func("main")
	info := prog.ResolvedInfo().Funcs[main]
	locals := make([]absdom.Value, info.FrameSize)
	for i := range locals {
		locals[i] = absdom.OfUndef(d)
	}
	inits := make([]int64, len(prog.Globals))
	for i, g := range prog.Globals {
		inits[i] = g.Init
	}
	root := &AProc{
		Path:   "0",
		Status: Running,
		Frames: []*AFrame{{
			Fn:     main,
			Locals: locals,
			Blocks: []blockPos{{block: main.Body, idx: 0}},
		}},
	}
	return &AConfig{
		Procs: []*AProc{root},
		Store: absdom.NewStore(d, inits),
	}
}

// String renders the result.
func (r *Result) String() string {
	return fmt.Sprintf("abstract states=%d visits=%d terminals=%d mayError=%v truncated=%v",
		r.States, r.Visits, r.TerminalCount, r.MayError, r.Truncated)
}
