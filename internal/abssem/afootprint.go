package abssem

import (
	"sort"

	"psa/internal/absdom"
	"psa/internal/lang"
	"psa/internal/pstring"
)

// AbsAccess is one element of an abstract footprint: a may-access to an
// abstract target (or to everything, when a ⊤ points-to set was
// dereferenced), performed by or on behalf of a statement.
type AbsAccess struct {
	Target absdom.Target
	All    bool // access through a ⊤ pointer: may touch anything
	Write  bool
}

// footRec accumulates per-statement abstract footprints during the
// abstract interpretation — the paper's §5.2 dependences computed from
// the abstract semantics itself, with no concrete exploration.
type footRec struct {
	m map[lang.NodeID]map[AbsAccess]bool
}

// merge unions another recorder into fr. The parallel engine's workers
// record into private per-process scratch recorders; the serial merge
// unions them back in worklist order. Set union is order-insensitive,
// so the result is identical to sequential in-place recording. Nil-safe
// on both sides (footprints may not be collected at all).
func (fr *footRec) merge(o *footRec) {
	if fr == nil || o == nil {
		return
	}
	for stmt, accs := range o.m {
		s := fr.m[stmt]
		if s == nil {
			s = make(map[AbsAccess]bool, len(accs))
			fr.m[stmt] = s
		}
		for acc := range accs {
			s[acc] = true
		}
	}
}

func (fr *footRec) add(stmt lang.NodeID, acc AbsAccess) {
	if fr == nil || stmt == 0 {
		return
	}
	s := fr.m[stmt]
	if s == nil {
		s = map[AbsAccess]bool{}
		fr.m[stmt] = s
	}
	s[acc] = true
}

// record attributes an access to the current statement and, transitively,
// to every call site on the process's procedure string (matching the
// concrete collector's footprint attribution).
func (st *astepper) record(acc AbsAccess) {
	fr := st.sc.foot
	if fr == nil {
		return
	}
	fr.add(st.curStmt, acc)
	for _, sym := range st.proc.PStr {
		if sym.Kind == pstring.SymCall {
			fr.add(lang.NodeID(sym.Site), acc)
		}
	}
}

// recordRead/recordWrite attribute target sets.
func (st *astepper) recordRead(ts []absdom.Target, all bool) {
	if st.sc.foot == nil {
		return
	}
	if all {
		st.record(AbsAccess{All: true})
		return
	}
	for _, t := range ts {
		st.record(AbsAccess{Target: t})
	}
}

func (st *astepper) recordWrite(ts []absdom.Target, all bool) {
	if st.sc.foot == nil {
		return
	}
	if all {
		st.record(AbsAccess{All: true, Write: true})
		return
	}
	for _, t := range ts {
		st.record(AbsAccess{Target: t, Write: true})
	}
}

// FootprintOf returns the abstract footprint attributed to the labeled
// statement, in deterministic order (nil when footprints were not
// collected or the label is unknown).
func (r *Result) FootprintOf(label string) []AbsAccess {
	if r.foot == nil {
		return nil
	}
	s := r.prog.StmtByLabel(label)
	if s == nil {
		return nil
	}
	m := r.foot.m[s.NodeID()]
	out := make([]AbsAccess, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i], out[j]
		if ai.All != aj.All {
			return !ai.All
		}
		if ai.Target.String() != aj.Target.String() {
			return ai.Target.String() < aj.Target.String()
		}
		return !ai.Write && aj.Write
	})
	return out
}

// Conflicts reports whether the abstract footprints of two labeled
// statements conflict: they may touch a common target (or one touches
// everything) with at least one write.
func (r *Result) Conflicts(labelA, labelB string) bool {
	fa, fb := r.FootprintOf(labelA), r.FootprintOf(labelB)
	for _, a := range fa {
		for _, b := range fb {
			if !a.Write && !b.Write {
				continue
			}
			if a.All || b.All || a.Target == b.Target {
				return true
			}
		}
	}
	return false
}
