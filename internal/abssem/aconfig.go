// Package abssem is the abstract interpreter of the framework (paper §4,
// §6): the concrete interleaving semantics of package sem re-executed over
// the abstract domains of package absdom, with configuration folding.
//
// Folding follows §6.1: abstract configurations are identified by their
// CONTROL component only (the vector of process control points — Taylor's
// "concurrency states" [Tay83]); all value state (frame locals, pending
// writes, the shared store) reached under one control point is joined.
// Procedure strings are k-limited and instance-stripped, so heap objects
// fold into finitely many abstract locations. Optional clan folding
// (§6.2, McDowell's clans [McD89]) additionally merges cobegin arms that
// execute identical blocks.
package abssem

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"psa/internal/absdom"
	"psa/internal/lang"
	"psa/internal/pstring"
)

// blockPos mirrors sem's control positions.
type blockPos struct {
	block *lang.Block
	idx   int
}

// destKind mirrors sem's return destinations.
type destKind uint8

const (
	destNone destKind = iota
	destLocal
	destTargets
)

// aDest is where a value lands: nowhere, a local slot, or an abstract
// points-to set (globals and heap summaries). The target set is value
// state; its presence/kind is control state.
type aDest struct {
	kind destKind
	slot int
	ts   []absdom.Target
	all  bool
}

// aPending is the write phase of a split transition.
type aPending struct {
	dest aDest
	val  absdom.Value
	stmt lang.NodeID
	bump bool
}

// AFrame is an abstract activation.
type AFrame struct {
	Fn      *lang.FuncDecl
	Locals  []absdom.Value
	Blocks  []blockPos
	Dest    aDest
	Pending *aPending
	// hasEntry mirrors sem.Frame: whether a procedure-string symbol was
	// pushed for this frame.
	hasEntry bool
}

// Status mirrors sem.ProcStatus.
type Status uint8

// Process states.
const (
	Running Status = iota
	WaitJoin
	Done
)

// AProc is an abstract process.
type AProc struct {
	Path     string
	Status   Status
	Frames   []*AFrame
	Parent   string
	LiveKids int
	// PStr is the abstract procedure string (outermost first, no
	// instance numbers): thread entries and call entries.
	PStr []pstring.Sym
	// Clan is the number of concrete arm instances this process stands
	// for (1 normally; ≥2 under clan folding — "ω" in the abstraction).
	Clan int
	// ArmBlock/ArmFn/InitLocals remember how this arm started so an
	// ω-clan can respawn "a member that has not run yet" (§6.2: with
	// several tasks folded, it is unknown how many have reached a point).
	ArmBlock   *lang.Block
	ArmFn      *lang.FuncDecl
	InitLocals []absdom.Value
}

// AConfig is an abstract configuration: processes plus the abstract store.
type AConfig struct {
	Procs []*AProc // sorted by Path
	Store *absdom.Store
	// MayError accumulates "some folded execution may fault here".
	MayError bool
}

// ctrlSig is the Taylor fold key: the control skeleton of a configuration,
// excluding all lattice-valued state.
type ctrlSig string

// signature computes the fold key.
func (c *AConfig) signature() ctrlSig {
	var b strings.Builder
	for _, p := range c.Procs {
		b.WriteString(p.Path)
		b.WriteByte(':')
		b.WriteByte(byte('0' + p.Status))
		b.WriteString(strconv.Itoa(p.LiveKids))
		b.WriteByte('*')
		b.WriteString(strconv.Itoa(clanAbstract(p.Clan)))
		for _, f := range p.Frames {
			b.WriteString("|f")
			b.WriteString(strconv.Itoa(f.Fn.Index))
			b.WriteByte(',')
			b.WriteByte(byte('0' + f.Dest.kind))
			if f.Dest.kind == destLocal {
				b.WriteString(strconv.Itoa(f.Dest.slot))
			}
			for _, bp := range f.Blocks {
				b.WriteString(";")
				b.WriteString(strconv.Itoa(int(bp.block.NodeID())))
				b.WriteByte('.')
				b.WriteString(strconv.Itoa(bp.idx))
			}
			if f.Pending != nil {
				b.WriteString(";!")
				b.WriteString(strconv.Itoa(int(f.Pending.stmt)))
			}
		}
		b.WriteByte('\n')
	}
	return ctrlSig(b.String())
}

// clanAbstract folds concrete multiplicities into {0, 1, ω(=2)}.
func clanAbstract(n int) int {
	if n > 2 {
		return 2
	}
	return n
}

// clone copies the configuration structure (frames deep, values shared).
func (c *AConfig) clone() *AConfig {
	nc := &AConfig{Store: c.Store, MayError: c.MayError}
	nc.Procs = make([]*AProc, len(c.Procs))
	for i, p := range c.Procs {
		nc.Procs[i] = p
	}
	return nc
}

func cloneProcIn(c *AConfig, i int) *AProc {
	p := c.Procs[i]
	np := &AProc{
		Path:       p.Path,
		Status:     p.Status,
		Parent:     p.Parent,
		LiveKids:   p.LiveKids,
		Clan:       p.Clan,
		ArmBlock:   p.ArmBlock,
		ArmFn:      p.ArmFn,
		InitLocals: p.InitLocals,
	}
	np.PStr = append([]pstring.Sym(nil), p.PStr...)
	np.Frames = make([]*AFrame, len(p.Frames))
	for j, f := range p.Frames {
		nf := &AFrame{Fn: f.Fn, Dest: f.Dest, hasEntry: f.hasEntry}
		nf.Locals = append([]absdom.Value(nil), f.Locals...)
		nf.Blocks = append([]blockPos(nil), f.Blocks...)
		if f.Pending != nil {
			pc := *f.Pending
			nf.Pending = &pc
		}
		np.Frames[j] = nf
	}
	c.Procs[i] = np
	return np
}

// joinInto joins the value state of src into dst (same control skeleton);
// reports whether dst changed. When widen is set, numeric components
// widen instead of joining.
func (dst *AConfig) joinInto(src *AConfig, widen bool) bool {
	changed := false
	jv := func(a, b absdom.Value) absdom.Value {
		if widen {
			return a.Widen(b)
		}
		return a.Join(b)
	}
	for i, p := range dst.Procs {
		q := src.Procs[i]
		for j, f := range p.Frames {
			g := q.Frames[j]
			for k := range f.Locals {
				nv := jv(f.Locals[k], g.Locals[k])
				if !nv.Eq(f.Locals[k]) {
					f.Locals[k] = nv
					changed = true
				}
			}
			if f.Pending != nil && g.Pending != nil {
				nv := jv(f.Pending.val, g.Pending.val)
				if !nv.Eq(f.Pending.val) {
					f.Pending.val = nv
					changed = true
				}
				if mergeDest(&f.Pending.dest, g.Pending.dest) {
					changed = true
				}
			}
			if mergeDest(&f.Dest, g.Dest) {
				changed = true
			}
		}
	}
	var ns *absdom.Store
	if widen {
		ns = dst.Store.Widen(src.Store)
	} else {
		ns = dst.Store.Join(src.Store)
	}
	if !ns.Eq(dst.Store) {
		dst.Store = ns
		changed = true
	}
	if src.MayError && !dst.MayError {
		dst.MayError = true
		changed = true
	}
	return changed
}

// joinCopy is the copy-on-write joinInto the dependency-driven engine
// needs: the receiver is left untouched (workers may be reading it
// through a published snapshot) and the join lands in a fresh
// configuration. deepCopy alone is not enough — it copies aDest and
// aPending by value, so the Target slices still share backing arrays
// with the receiver, and mergeDest appends to and sorts those slices in
// place — so the copy privatizes every destTargets slice before joining.
// The joined values are computed by the same joinInto the sequential
// engine runs, so results stay bit-identical.
func (dst *AConfig) joinCopy(src *AConfig, widen bool) (*AConfig, bool) {
	nc := dst.deepCopy()
	for _, p := range nc.Procs {
		for _, f := range p.Frames {
			if f.Dest.kind == destTargets {
				f.Dest.ts = append([]absdom.Target(nil), f.Dest.ts...)
			}
			if f.Pending != nil && f.Pending.dest.kind == destTargets {
				f.Pending.dest.ts = append([]absdom.Target(nil), f.Pending.dest.ts...)
			}
		}
	}
	changed := nc.joinInto(src, widen)
	return nc, changed
}

// mergeDest unions target sets of two dests with the same kind.
func mergeDest(d *aDest, o aDest) bool {
	if d.kind != destTargets {
		return false
	}
	changed := false
	if o.all && !d.all {
		d.all = true
		return true
	}
	for _, t := range o.ts {
		found := false
		for _, u := range d.ts {
			if u == t {
				found = true
				break
			}
		}
		if !found {
			d.ts = append(d.ts, t)
			changed = true
		}
	}
	if changed {
		sort.Slice(d.ts, func(i, j int) bool { return d.ts[i].String() < d.ts[j].String() })
	}
	return changed
}

// deepCopyValues returns a full private copy of the configuration so a
// stored state can never alias a working one.
func (c *AConfig) deepCopy() *AConfig {
	nc := &AConfig{Store: c.Store, MayError: c.MayError}
	nc.Procs = make([]*AProc, len(c.Procs))
	for i := range c.Procs {
		nc.Procs[i] = c.Procs[i]
		cloneProcIn(nc, i)
	}
	return nc
}

func (c *AConfig) procIndex(path string) int {
	for i, p := range c.Procs {
		if p.Path == path {
			return i
		}
	}
	return -1
}

func (c *AConfig) insertSorted(p *AProc) {
	i := sort.Search(len(c.Procs), func(i int) bool { return c.Procs[i].Path >= p.Path })
	c.Procs = append(c.Procs, nil)
	copy(c.Procs[i+1:], c.Procs[i:])
	c.Procs[i] = p
}

func (c *AConfig) removeAt(i int) {
	c.Procs = append(c.Procs[:i:i], c.Procs[i+1:]...)
}

// nextStmt returns the next statement of p (nil when exhausted).
func nextStmt(p *AProc) lang.Stmt {
	if len(p.Frames) == 0 {
		return nil
	}
	f := p.Frames[len(p.Frames)-1]
	if len(f.Blocks) == 0 {
		return nil
	}
	bp := f.Blocks[len(f.Blocks)-1]
	if bp.idx >= len(bp.block.Stmts) {
		return nil
	}
	return bp.block.Stmts[bp.idx]
}

func hasPending(p *AProc) bool {
	return len(p.Frames) > 0 && p.Frames[len(p.Frames)-1].Pending != nil
}

// enabled returns the indices of processes with transitions.
func (c *AConfig) enabled() []int {
	var out []int
	for i, p := range c.Procs {
		if p.Status == Running && (hasPending(p) || nextStmt(p) != nil) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the abstract configuration for diagnostics.
func (c *AConfig) String() string {
	var parts []string
	for _, p := range c.Procs {
		s := "-"
		if n := nextStmt(p); n != nil {
			s = lang.DescribeStmt(n)
		}
		parts = append(parts, fmt.Sprintf("%s@%s", p.Path, s))
	}
	return "⟨" + strings.Join(parts, " ") + "⟩ " + c.Store.String()
}
