package abssem

import (
	"strings"
	"testing"

	"psa/internal/absdom"
	"psa/internal/explore"
	"psa/internal/lang"
)

// coverPrograms exercise the predicate across the language surface:
// racing writes, heap allocation under concurrency, pointer globals,
// recursion, and error terminals.
var coverPrograms = []struct {
	name string
	src  string
}{
	{"race", `
var g;
func main() {
  cobegin { g = 1; } || { g = 2; } coend
}
`},
	{"heap", `
var out;
func main() {
  var p = malloc(1);
  *p = 7;
  cobegin { *p = 8; } || { out = *p; } coend
}
`},
	{"ptr-global", `
var g = 3;
var pg;
func main() {
  pg = &g;
  cobegin { *pg = 4; } || { g = 5; } coend
}
`},
	{"recursion", `
var acc;
func f(n) {
  if n > 0 {
    var t = f(n - 1);
    acc = acc + t;
    return t + 1;
  }
  return 0;
}
func main() {
  cobegin { f(2); } || { acc = 1; } coend
}
`},
	{"error", `
var g;
func main() {
  cobegin { g = 1; } || { assert g == 0; } coend
}
`},
	{"free", `
var g;
func main() {
  var p = malloc(1);
  *p = 1;
  cobegin { free(p); } || { g = *p; } coend
}
`},
}

// TestCoversTerminals is the soundness oracle in miniature: every
// concrete terminal (normal or error) of full exploration must be
// covered by the abstract result.
func TestCoversTerminals(t *testing.T) {
	for _, tc := range coverPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog := lang.MustParse(tc.src)
			conc := explore.Explore(prog, explore.Options{})
			if conc.Truncated {
				t.Fatal("concrete exploration truncated")
			}
			for _, opts := range []Options{
				{},
				{ClanFold: true},
				{Domain: absdom.IntervalDomain{}},
				{KBirth: 1},
				{RecLimit: 1},
			} {
				abs := Analyze(prog, opts)
				if abs.Truncated {
					t.Fatal("abstract run truncated")
				}
				for _, term := range conc.Terminals {
					if err := abs.Covers(term, opts); err != nil {
						t.Errorf("opts %+v: terminal not covered: %v", opts, err)
					}
				}
				for _, ec := range conc.Errors {
					if err := abs.Covers(ec, opts); err != nil {
						t.Errorf("opts %+v: error terminal not covered: %v", opts, err)
					}
				}
			}
		})
	}
}

// TestStoreCoversRejectsCorruption feeds the predicate the deliberately
// wrong invariant the soak harness uses for its self-test: a store
// claiming every global still holds its initializer. Any program whose
// racing arms move a global must be flagged.
func TestStoreCoversRejectsCorruption(t *testing.T) {
	prog := lang.MustParse(`
var g;
func main() {
  cobegin { g = 1; } || { g = 2; } coend
}
`)
	conc := explore.Explore(prog, explore.Options{})
	inits := []int64{0}
	corrupted := absdom.NewStore(absdom.ConstDomain{}, inits)
	caught := false
	for _, term := range conc.Terminals {
		if err := StoreCovers(corrupted, term, Options{}); err != nil {
			caught = true
			if !strings.Contains(err.Error(), "global g") {
				t.Errorf("violation should name the global: %v", err)
			}
		}
	}
	if !caught {
		t.Fatal("corrupted store (globals = initializers) not flagged on any terminal")
	}
}

// TestCoversReportsMissingMayError pins the error-terminal direction.
func TestCoversReportsMissingMayError(t *testing.T) {
	prog := lang.MustParse(`
var g;
func main() {
  g = 1;
  assert g == 0;
}
`)
	conc := explore.Explore(prog, explore.Options{})
	if len(conc.Errors) == 0 {
		t.Fatal("program should reach an error terminal")
	}
	abs := Analyze(prog, Options{})
	if !abs.MayError {
		t.Fatal("abstract engine should predict the failing assert")
	}
	// Forge a result without the error prediction: Covers must reject.
	forged := *abs
	forged.MayError = false
	if err := forged.Covers(conc.Errors[0], Options{}); err == nil {
		t.Fatal("error terminal accepted despite MayError = false")
	}
}
