package abssem

import (
	"context"

	"psa/internal/lang"
	"psa/internal/metrics"
	"psa/internal/sched"
)

// analyzeDep is the dependency-driven abstract fixpoint engine: the same
// worklist as the sequential Analyze and the leveled analyzeParallel, run
// on sched.DepRounds so there is no per-round barrier. Each worklist
// entry becomes one task in sequential discovery order; workers expand
// tasks (sc.step, fold signatures, private footprint scratch) as soon as
// they are published, and the serial merge chain consumes expansions in
// strict task order, so an entry merges as soon as its predecessors in
// the weak partial order — exactly the entries the sequential engine
// would pop before it — have merged. Under the leveled scheduler a whole
// round waits for its slowest expansion before any merge of the next
// round's work can start; here the pipeline keeps draining.
//
// Determinism argument. All lattice bookkeeping — visits, dedup, joins,
// widening decisions, queue appends (emit), and the MaxStates truncation
// cut — happens in the merge chain, one goroutine at a time, in task
// order, which IS the sequential pop order (FIFO worklist: task i's
// emits are appended after everything emitted by tasks < i). The only
// input a worker computes is the expansion of a state snapshot, and the
// merge discards it whenever the snapshot was stale: states carry a
// change-sequence number published atomically with the configuration
// (aState.snap), and a join that grows a state bumps the number, so the
// merge re-expands serially — from exactly the value state the
// sequential engine would have popped — whenever stv.changed postdates
// the snapshot the worker loaded. Merged outcomes therefore equal
// expand(state-at-merge-time) for every entry, which is the sequential
// computation verbatim; stale recomputes only cost time (perf-only
// abs_stale_recomputes).
//
// Joins into a state with an outstanding (unmerged) task are
// copy-on-write (AConfig.joinCopy): a snapshot a worker may be reading
// is never mutated; the merge joins into a fresh copy and republishes.
// Joins into an idle state — every task merged, so no possible reader —
// run in place like the sequential engine's. The queue-length bookkeeping the
// sequential engine derives from len(queue) is reconstructed as
// total−i (tasks published minus tasks merged), which matches it
// exactly — including MaxFrontier, which the leveled engine can only
// approximate per round.
//
// Cancellation rides dep.RunContext: the merge chain stops before its
// next task once ctx fires, in-flight expansions drain, and the run
// falls through to collection exactly like the MaxStates truncation
// cut, so the partial Result is coherent for the merged prefix.
func analyzeDep(ctx context.Context, prog *lang.Program, opts Options) *Result {
	pool := opts.Pool
	if pool == nil {
		pool = sched.NewPool(opts.Workers)
		defer pool.Close()
	}
	m := opts.Metrics
	defer m.Phase("abstract")()
	sc := newStepCtx(prog, opts)
	res := &Result{prog: prog, foot: sc.foot}

	init := initialConfig(prog, opts.Domain)
	states := map[ctrlSig]*aState{}
	sig0 := init.signature()
	st0 := &aState{cfg: init, queued: true}
	st0.snap.Store(&absSnap{cfg: init, seq: 0})
	states[sig0] = st0
	total := 1    // tasks published so far (seed + emits)
	mergeSeq := 0 // numbers the joins that changed a stored state

	dep := sched.NewDepRounds[*aState, aDepSlot](pool, sched.DepHooks{
		Ready:     func(n int) { m.MaxGauge(metrics.AbsDepReadyDepth, int64(n)) },
		MergeWait: func() { m.Inc(metrics.AbsDepMergeWaits) },
	})

	expand := func(i int, stv **aState, slot *aDepSlot) {
		s := (*stv).snap.Load()
		slot.seq = s.seq
		slot.ex = expandState(sc, s.cfg)
	}

	merge := func(i int, pstv **aState, slot *aDepSlot, emit func(*aState)) bool {
		stv := *pstv
		m.SetGauge(metrics.QueueLen, int64(total-i))
		m.MaxGauge(metrics.MaxFrontier, int64(total-i))
		stv.queued = false
		stv.visits++
		res.Visits++
		m.Inc(metrics.AbsVisits)

		if len(slot.ex.enabled) == 0 {
			return true // terminal; collected after the fixpoint
		}
		if stv.changed > slot.seq {
			// The state grew after the worker snapshotted it; recompute
			// its successors from the state the sequential engine would
			// have popped. enabled() is control-only, so the terminal
			// check above is unaffected by value growth.
			slot.ex = expandState(sc, stv.cfg)
			m.Inc(metrics.AbsStaleRecomputes)
		}
		e := &slot.ex
		for j := range e.enabled {
			sc.foot.merge(e.foots[j])
			for k, succ := range e.succs[j] {
				if succ.Procs == nil {
					// Error witness: no continuation.
					if succ.MayError {
						res.MayError = true
					}
					continue
				}
				if succ.MayError {
					res.MayError = true
				}
				nsig := e.sigs[j][k]
				cur, ok := states[nsig]
				if !ok {
					if len(states) >= opts.MaxStates {
						res.Truncated = true
						return false
					}
					cur = &aState{cfg: succ.deepCopy()}
					cur.snap.Store(&absSnap{cfg: cur.cfg, seq: mergeSeq})
					states[nsig] = cur
					cur.queued = true
					total++
					emit(cur)
					continue
				}
				widen := cur.visits >= opts.WidenAfter
				m.Inc(metrics.AbsJoins)
				if widen {
					m.Inc(metrics.AbsWidenings)
				}
				if !cur.queued {
					// Every task of this state has merged, and a task's
					// expansion completes before its merge, so no worker holds
					// the snapshot: join in place exactly as the sequential
					// engine does and republish. The re-emitted task's reader
					// is ordered after this mutation by the snap Store
					// followed by emit's mutex handoff.
					if cur.cfg.joinInto(succ, widen) {
						mergeSeq++
						cur.changed = mergeSeq
						cur.snap.Store(&absSnap{cfg: cur.cfg, seq: mergeSeq})
						cur.queued = true
						total++
						emit(cur)
					}
				} else if nc, changed := cur.cfg.joinCopy(succ, widen); changed {
					// An unmerged task of this state is outstanding — a worker
					// may be expanding the published snapshot right now — so
					// the join goes copy-on-write and the snapshot stays
					// immutable.
					mergeSeq++
					cur.changed = mergeSeq
					cur.cfg = nc
					cur.snap.Store(&absSnap{cfg: nc, seq: mergeSeq})
				}
			}
		}
		return true
	}

	if !dep.RunContext(ctx, []*aState{st0}, expand, nil, merge) && !res.Truncated {
		res.Cancelled = true
	}
	res.collect(states, m)
	sc.sum.publish()
	return res
}

// aDepSlot is one task's expansion plus the change-sequence number of
// the snapshot it was computed from; the merge re-expands when the
// state's current change number is newer.
type aDepSlot struct {
	seq int
	ex  aExpansion
}
