package abssem

import (
	"strconv"

	"psa/internal/absdom"
	"psa/internal/lang"
	"psa/internal/pstring"
	"psa/internal/sem"
)

// stepCtx carries the per-exploration context of the abstract semantics.
type stepCtx struct {
	prog    *lang.Program
	dom     absdom.NumDomain
	sums    *sem.Summaries
	sharing *lang.Sharing
	kBirth  int
	recLim  int
	clan    bool
	foot    *footRec // non-nil when collecting abstract footprints
	// sum is the run's handle on the shared summary cache (nil when
	// Options.Summaries is unset); expandState consults and feeds it.
	sum *runSummaries
}

// step computes all abstract successors of firing process pi in c. A
// statement may have several successors (both branches of an unresolved
// conditional, several callees of an indirect call). Abstract faults set
// MayError on a successor-less branch, which the explorer records.
func (sc *stepCtx) step(c *AConfig, pi int) []*AConfig {
	base := c.clone()
	p := cloneProcIn(base, pi)
	st := &astepper{sc: sc, cfg: base, proc: p, cloned: map[string]bool{p.Path: true}}
	if hasPending(p) {
		st.curStmt = p.Frames[len(p.Frames)-1].Pending.stmt
		st.commitPending()
	} else {
		s := nextStmt(p)
		st.curStmt = s.NodeID()
		st.exec(s)
	}
	return st.out
}

// astepper executes one abstract transition; branching statements fork the
// stepper state.
type astepper struct {
	sc      *stepCtx
	cfg     *AConfig
	proc    *AProc
	cloned  map[string]bool
	out     []*AConfig
	mayErr  bool
	curStmt lang.NodeID // statement being executed (footprint attribution)
}

func (st *astepper) frame() *AFrame { return st.proc.Frames[len(st.proc.Frames)-1] }

func (st *astepper) bump() {
	f := st.frame()
	f.Blocks[len(f.Blocks)-1].idx++
}

// emit finalizes the current stepper state as one successor.
func (st *astepper) emit() {
	st.settle(st.proc)
	st.cfg.MayError = st.cfg.MayError || st.mayErr
	st.out = append(st.out, st.cfg)
}

// emitError records that this branch may fault and produces no normal
// successor; the paper's abstract semantics over-approximates the
// non-error continuations, and the explorer reports MayError globally.
func (st *astepper) emitError() {
	errCfg := st.cfg.clone()
	errCfg.MayError = true
	errCfg.Procs = nil // no continuation; terminal error witness
	st.out = append(st.out, errCfg)
}

// fork duplicates the stepper (deep copy) so one branch can continue
// independently of another.
func (st *astepper) fork() *astepper {
	nc := st.cfg.deepCopy()
	var proc *AProc
	if pi := nc.procIndex(st.proc.Path); pi >= 0 {
		proc = nc.Procs[pi]
	}
	n2 := &astepper{sc: st.sc, cfg: nc, proc: proc, cloned: map[string]bool{}, mayErr: st.mayErr, curStmt: st.curStmt}
	for k := range st.cloned {
		n2.cloned[k] = true
	}
	return n2
}

func (st *astepper) mutProc(path string) *AProc {
	i := st.cfg.procIndex(path)
	if st.cloned[path] {
		return st.cfg.Procs[i]
	}
	st.cloned[path] = true
	return cloneProcIn(st.cfg, i)
}

// exec runs one abstract statement.
func (st *astepper) exec(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.VarStmt:
		if call, ok := s.Init.(*lang.CallExpr); ok {
			st.bump()
			st.call(s, call, aDest{kind: destLocal, slot: s.Slot})
			return
		}
		v, ok := st.eval(s, s.Init)
		if !ok {
			st.emitError()
			return
		}
		st.bump()
		st.frame().Locals[s.Slot] = v
		st.emit()

	case *lang.AssignStmt:
		if call, ok := s.Value.(*lang.CallExpr); ok {
			dest, ok2 := st.destOf(s, s.Target)
			if !ok2 {
				st.emitError()
				return
			}
			st.bump()
			st.call(s, call, dest)
			return
		}
		v, ok := st.eval(s, s.Value)
		if !ok {
			st.emitError()
			return
		}
		dest, ok := st.destOf(s, s.Target)
		if !ok {
			st.emitError()
			return
		}
		if st.splitWrite(s, dest) {
			st.frame().Pending = &aPending{dest: dest, val: v, stmt: s.NodeID(), bump: true}
			st.emit()
			return
		}
		st.storeDest(dest, v)
		st.bump()
		st.emit()

	case *lang.CallStmt:
		st.bump()
		st.call(s, s.Call, aDest{kind: destNone})

	case *lang.CobeginStmt:
		st.bump()
		st.forkArms(s)
		st.emit()

	case *lang.IfStmt:
		v, ok := st.eval(s, s.Cond)
		if !ok {
			st.emitError()
			return
		}
		mt, mf := v.MayTruth()
		st.branch(s, mt, mf, func(b *astepper, taken bool) {
			b.bump()
			f := b.frame()
			if taken {
				f.Blocks = append(f.Blocks, blockPos{block: s.Then, idx: 0})
			} else if s.Else != nil {
				f.Blocks = append(f.Blocks, blockPos{block: s.Else, idx: 0})
			}
		})

	case *lang.WhileStmt:
		v, ok := st.eval(s, s.Cond)
		if !ok {
			st.emitError()
			return
		}
		mt, mf := v.MayTruth()
		st.branch(s, mt, mf, func(b *astepper, taken bool) {
			f := b.frame()
			if taken {
				f.Blocks = append(f.Blocks, blockPos{block: s.Body, idx: 0})
			} else {
				b.bump()
			}
		})

	case *lang.ReturnStmt:
		v := absdom.OfUndef(st.sc.dom)
		if s.Value != nil {
			var ok bool
			v, ok = st.eval(s, s.Value)
			if !ok {
				st.emitError()
				return
			}
		}
		st.ret(s, v, s.Value != nil)

	case *lang.SkipStmt:
		st.bump()
		st.emit()

	case *lang.AssertStmt:
		v, ok := st.eval(s, s.Cond)
		if !ok {
			st.emitError()
			return
		}
		mt, mf := v.MayTruth()
		if mf {
			st.mayErr = true
		}
		if !mt {
			st.emitError()
			return
		}
		st.bump()
		st.emit()

	case *lang.FreeStmt:
		if _, ok := st.eval(s, s.Ptr); !ok {
			st.emitError()
			return
		}
		// Abstract free keeps the summary (other folded objects live on);
		// subsequent accesses may dangle.
		st.mayErr = true
		st.bump()
		st.emit()

	default:
		st.emitError()
	}
}

// branch emits successors for the feasible outcomes of a condition.
func (st *astepper) branch(s lang.Stmt, mayTrue, mayFalse bool, apply func(*astepper, bool)) {
	switch {
	case mayTrue && mayFalse:
		other := st.fork()
		apply(st, true)
		st.emit()
		apply(other, false)
		other.emit()
		st.out = append(st.out, other.out...)
	case mayTrue:
		apply(st, true)
		st.emit()
	case mayFalse:
		apply(st, false)
		st.emit()
	default:
		st.emitError()
	}
}

// commitPending performs the write phase of a split transition.
func (st *astepper) commitPending() {
	f := st.frame()
	op := f.Pending
	f.Pending = nil
	st.storeDest(op.dest, op.val)
	if op.bump {
		st.bump()
	}
	st.emit()
}

// splitWrite mirrors sem: split when the statement performed a critical
// read and the destination may be shared.
func (st *astepper) splitWrite(s lang.Stmt, dest aDest) bool {
	if dest.kind != destTargets {
		return false
	}
	shared := dest.all
	for _, t := range dest.ts {
		if st.targetShared(t) {
			shared = true
		}
	}
	if !shared {
		return false
	}
	// Conservative mirror of the concrete criterion: does the statement
	// read any possibly-shared storage? Use the static summary.
	sum := st.sc.sums.StmtSummary(s)
	for gi, r := range sum.GR {
		if r && st.sc.sharing.GlobalShared[gi] {
			return true
		}
	}
	return sum.HR && st.sc.sharing.HeapShared
}

func (st *astepper) targetShared(t absdom.Target) bool {
	if t.Heap {
		return st.sc.sharing.HeapShared
	}
	return st.sc.sharing.GlobalShared[t.Index]
}

// destOf resolves an assignment target.
func (st *astepper) destOf(s lang.Stmt, target lang.Expr) (aDest, bool) {
	switch t := target.(type) {
	case *lang.VarRef:
		switch t.Kind {
		case lang.RefLocal:
			return aDest{kind: destLocal, slot: t.Index}, true
		case lang.RefGlobal:
			return aDest{kind: destTargets, ts: []absdom.Target{{Index: t.Index}}}, true
		}
		return aDest{}, false
	case *lang.DerefExpr:
		pv, ok := st.eval(s, t.Ptr)
		if !ok {
			return aDest{}, false
		}
		if pv.Ptrs.All {
			return aDest{kind: destTargets, all: true}, true
		}
		ts, _ := pv.PtrTargets()
		if len(ts) == 0 {
			st.mayErr = true
			return aDest{}, false
		}
		return aDest{kind: destTargets, ts: ts}, true
	}
	return aDest{}, false
}

// storeDest writes v to the destination.
func (st *astepper) storeDest(dest aDest, v absdom.Value) {
	switch dest.kind {
	case destNone:
	case destLocal:
		st.frame().Locals[dest.slot] = v
	case destTargets:
		st.recordWrite(dest.ts, dest.all)
		st.cfg.Store = st.cfg.Store.WriteTargets(dest.ts, dest.all, v)
	}
}

// call dispatches an abstract call: one successor per possible callee;
// recursion beyond the limit is havocked through the static summary.
func (st *astepper) call(s lang.Stmt, c *lang.CallExpr, dest aDest) {
	cv, ok := st.eval(s, c.Callee)
	if !ok {
		st.emitError()
		return
	}
	fns, finite := cv.FnTargets()
	if !finite {
		// Any function whose name is used as a value may run.
		fns = nil
		for _, f := range st.sc.prog.Funcs {
			fns = append(fns, f.Index)
		}
	}
	if len(fns) == 0 {
		st.mayErr = true
		st.emitError()
		return
	}
	args := make([]absdom.Value, len(c.Args))
	for i, a := range c.Args {
		v, ok := st.eval(s, a)
		if !ok {
			st.emitError()
			return
		}
		args[i] = v
	}
	for i, fnIdx := range fns {
		target := st
		if i < len(fns)-1 {
			target = st.fork()
		}
		target.enter(s, fnIdx, args, dest)
		if target != st {
			st.out = append(st.out, target.out...)
		}
	}
}

// enter pushes an activation of the function, or havocs it past the
// recursion limit.
func (st *astepper) enter(s lang.Stmt, fnIdx int, args []absdom.Value, dest aDest) {
	fn := st.sc.prog.Funcs[fnIdx]
	if len(args) != len(fn.Params) {
		st.mayErr = true
		st.emitError()
		return
	}
	depth := 0
	for _, f := range st.proc.Frames {
		if f.Fn == fn {
			depth++
		}
	}
	if depth >= st.sc.recLim {
		st.havoc(fn, dest)
		st.emit()
		return
	}
	info := st.sc.prog.ResolvedInfo().Funcs[fn]
	nf := &AFrame{
		Fn:       fn,
		Locals:   make([]absdom.Value, info.FrameSize),
		Blocks:   []blockPos{{block: fn.Body, idx: 0}},
		Dest:     dest,
		hasEntry: true,
	}
	for i := range nf.Locals {
		nf.Locals[i] = absdom.OfUndef(st.sc.dom)
	}
	copy(nf.Locals, args)
	st.proc.Frames = append(st.proc.Frames, nf)
	st.proc.PStr = append(st.proc.PStr, pstring.Sym{
		Kind: pstring.SymCall, Site: int(s.NodeID()), Which: fn.Index,
	})
	st.emit()
}

// havoc applies a summarized call: every global the callee may write and
// every heap summary it may write go to ⊤; the result is ⊤. Footprints
// record the summary's accesses conservatively.
func (st *astepper) havoc(fn *lang.FuncDecl, dest aDest) {
	sum := st.sc.sums.FnSummary(fn)
	top := absdom.TopValue(st.sc.dom)
	store := st.cfg.Store
	for gi, w := range sum.GW {
		if w {
			store = store.SetGlobal(gi, top)
			st.recordWrite([]absdom.Target{{Index: gi}}, false)
		}
	}
	for gi, r := range sum.GR {
		if r {
			st.recordRead([]absdom.Target{{Index: gi}}, false)
		}
	}
	if sum.HW {
		store = store.WriteTargets(nil, true, top)
		st.recordWrite(nil, true)
	} else if sum.HR {
		st.recordRead(nil, true)
	}
	st.cfg.Store = store
	st.storeDest(dest, top)
}

// ret pops the frame and delivers the value.
func (st *astepper) ret(s lang.Stmt, v absdom.Value, hasValue bool) {
	f := st.frame()
	if f.Dest.kind != destNone && !hasValue {
		st.mayErr = true
		st.emitError()
		return
	}
	split := st.splitWrite(s, f.Dest)
	st.proc.Frames = st.proc.Frames[:len(st.proc.Frames)-1]
	if f.hasEntry && len(st.proc.PStr) > 0 {
		st.proc.PStr = st.proc.PStr[:len(st.proc.PStr)-1]
	}
	if len(st.proc.Frames) == 0 {
		st.emit()
		return
	}
	if split {
		st.frame().Pending = &aPending{dest: f.Dest, val: v, stmt: s.NodeID(), bump: false}
		st.emit()
		return
	}
	st.storeDest(f.Dest, v)
	st.emit()
}

// forkArms spawns abstract children for a cobegin. Under clan folding,
// arms with identical block text share one abstract process whose Clan
// count abstracts the multiplicity.
func (st *astepper) forkArms(s *lang.CobeginStmt) {
	parent := st.proc
	parent.Status = WaitJoin
	pf := parent.Frames[len(parent.Frames)-1]

	type armGroup struct {
		arms []int
		rep  *lang.Block
	}
	groups := []armGroup{}
	if st.sc.clan {
		byText := map[string][]int{}
		order := []string{}
		for i, arm := range s.Arms {
			txt := blockText(arm)
			if _, ok := byText[txt]; !ok {
				order = append(order, txt)
			}
			byText[txt] = append(byText[txt], i)
		}
		for _, txt := range order {
			idxs := byText[txt]
			groups = append(groups, armGroup{arms: idxs, rep: s.Arms[idxs[0]]})
		}
	} else {
		for i, arm := range s.Arms {
			groups = append(groups, armGroup{arms: []int{i}, rep: arm})
		}
	}

	parent.LiveKids = len(groups)
	for _, g := range groups {
		locals := append([]absdom.Value(nil), pf.Locals...)
		frameLocals := append([]absdom.Value(nil), pf.Locals...)
		child := &AProc{
			Path:   parent.Path + "/" + strconv.Itoa(g.arms[0]),
			Status: Running,
			Parent: parent.Path,
			Clan:   len(g.arms),
			PStr: append(append([]pstring.Sym(nil), parent.PStr...), pstring.Sym{
				Kind: pstring.SymThread, Site: int(s.NodeID()), Which: g.arms[0],
			}),
			ArmBlock:   g.rep,
			ArmFn:      pf.Fn,
			InitLocals: locals,
			Frames: []*AFrame{{
				Fn:       pf.Fn,
				Locals:   frameLocals,
				Blocks:   []blockPos{{block: g.rep, idx: 0}},
				hasEntry: true,
			}},
		}
		st.cloned[child.Path] = true
		st.cfg.insertSorted(child)
		st.settle(child)
	}
}

// blockText renders a block for clan grouping.
func blockText(b *lang.Block) string {
	var sb []byte
	lang.WalkStmts(b, func(s lang.Stmt) {
		sb = append(sb, describeShape(s)...)
		sb = append(sb, ';')
	})
	return string(sb)
}

func describeShape(s lang.Stmt) string {
	switch s := s.(type) {
	case *lang.VarStmt:
		return "var " + s.Name + "=" + lang.ExprString(s.Init)
	case *lang.AssignStmt:
		return lang.ExprString(s.Target) + "=" + lang.ExprString(s.Value)
	case *lang.CallStmt:
		return lang.ExprString(s.Call)
	case *lang.IfStmt:
		return "if " + lang.ExprString(s.Cond)
	case *lang.WhileStmt:
		return "while " + lang.ExprString(s.Cond)
	case *lang.ReturnStmt:
		if s.Value != nil {
			return "return " + lang.ExprString(s.Value)
		}
		return "return"
	case *lang.AssertStmt:
		return "assert " + lang.ExprString(s.Cond)
	case *lang.FreeStmt:
		return "free " + lang.ExprString(s.Ptr)
	case *lang.SkipStmt:
		return "skip"
	case *lang.CobeginStmt:
		out := "cobegin"
		for _, a := range s.Arms {
			out += "{" + blockText(a) + "}"
		}
		return out
	}
	return "?"
}

// settle mirrors sem.settle: pop exhausted control eagerly.
func (st *astepper) settle(p *AProc) {
	for {
		if p.Status != Running {
			return
		}
		if len(p.Frames) == 0 {
			if p.Clan >= 2 && p.ArmBlock != nil && p.Parent != "" {
				// ω-clan member finished: another member may not have run
				// yet (multiplicity is abstracted away), so a successor
				// where the clan respawns at the arm start must exist
				// alongside the all-members-done join below.
				st.clanRespawn(p)
			}
			st.finish(p)
			return
		}
		f := p.Frames[len(p.Frames)-1]
		if f.Pending != nil {
			return
		}
		if len(f.Blocks) == 0 {
			if f.Dest.kind != destNone {
				st.mayErr = true
				// Treat as delivering ⊤ (missing return is a concrete
				// error; over-approximate the continuations).
			}
			p.Frames = p.Frames[:len(p.Frames)-1]
			if f.hasEntry && len(p.PStr) > 0 {
				p.PStr = p.PStr[:len(p.PStr)-1]
			}
			if len(p.Frames) > 0 && f.Dest.kind != destNone {
				st.storeDestOn(p, f.Dest, absdom.TopValue(st.sc.dom))
			}
			continue
		}
		bp := &f.Blocks[len(f.Blocks)-1]
		if bp.idx >= len(bp.block.Stmts) {
			f.Blocks = f.Blocks[:len(f.Blocks)-1]
			continue
		}
		return
	}
}

func (st *astepper) storeDestOn(p *AProc, dest aDest, v absdom.Value) {
	switch dest.kind {
	case destLocal:
		f := p.Frames[len(p.Frames)-1]
		f.Locals[dest.slot] = v
	case destTargets:
		st.cfg.Store = st.cfg.Store.WriteTargets(dest.ts, dest.all, v)
	}
}

// clanRespawn emits the successor in which the folded clan keeps running:
// the configuration forks, and in the fork the clan process restarts at
// the beginning of its arm with fresh copy-in locals.
func (st *astepper) clanRespawn(p *AProc) {
	alt := st.fork()
	ap := alt.cfg.Procs[alt.cfg.procIndex(p.Path)]
	ap.Frames = []*AFrame{{
		Fn:       ap.ArmFn,
		Locals:   append([]absdom.Value(nil), ap.InitLocals...),
		Blocks:   []blockPos{{block: ap.ArmBlock, idx: 0}},
		hasEntry: true,
	}}
	alt.cfg.MayError = alt.cfg.MayError || alt.mayErr
	st.out = append(st.out, alt.cfg)
}

// finish completes a process.
func (st *astepper) finish(p *AProc) {
	if p.Parent == "" {
		p.Status = Done
		return
	}
	if i := st.cfg.procIndex(p.Path); i >= 0 {
		st.cfg.removeAt(i)
	}
	parent := st.mutProc(p.Parent)
	parent.LiveKids--
	if parent.LiveKids == 0 {
		parent.Status = Running
		st.settle(parent)
	}
}
