// Package progen generates random cobegin programs for differential
// testing. The generator is seed-reproducible — the same (seed, Profile)
// pair always yields byte-identical source — and emits only well-formed
// programs: every generated source parses, resolves, and terminates under
// every interleaving (loops count down a dedicated local, recursion is
// bounded by a constant argument), so the concrete explorer, the abstract
// engine, and every reduction can be run against each other without a
// per-program triage step.
//
// The companion shrinker (shrink.go) minimizes a failing program while
// preserving its failure, turning a soak-run divergence into a reproducer
// small enough to read.
//
// Construction invariants (they mirror the resolver's rules, so Generate
// never produces a rejected program):
//
//   - loop counters and recursion parameters are never assigned by
//     generated statements, keeping every loop and recursion bounded;
//   - cobegin arms only assign locals declared inside the arm;
//   - calls appear only as statements or as an entire right-hand side;
//   - value procedures return on every path; void procedures are only
//     called for effect, so falling off the end is legal;
//   - pointers are initialized before use: local pointers are declared as
//     "var p = malloc(k); *p = e;" and pointer globals are seeded in a
//     main prologue. (free and concurrent re-allocation can still dangle
//     them later — runtime errors are part of the semantics both engines
//     model, so such programs stay useful oracle inputs.)
//   - every construct is charged against a dynamic-step budget
//     (Profile.MaxSteps): loops multiply the cost of their body, calls add
//     the callee's worst case, and a recursive helper's cost covers all
//     its activations — so loops, calls, and cobegin cannot compose into a
//     program whose execution (or interleaving space) explodes.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"psa/internal/lang"
)

// Profile is the size/shape envelope of generated programs. The zero
// value is not useful; start from DefaultProfile or SmallProfile and
// adjust. All limits are inclusive upper bounds unless noted.
type Profile struct {
	// Globals is the number of integer-valued shared globals (min 1).
	Globals int
	// PtrGlobals is the number of pointer-holding shared globals, seeded
	// by a main prologue (requires Alloc; 0 disables).
	PtrGlobals int
	// ValueFuncs and VoidFuncs are the helper-procedure counts beyond
	// main. Value helpers return on every path; void helpers are called
	// only for effect.
	ValueFuncs int
	VoidFuncs  int
	// MaxBlockStmts bounds the generated statements per block (min 1).
	MaxBlockStmts int
	// MaxDepth bounds if/while nesting inside one function body.
	MaxDepth int
	// MaxArms bounds cobegin arm counts (min 2).
	MaxArms int
	// CobeginBudget bounds the cobegin statements per function body;
	// cobegins inside arms (budget permitting) produce nested cobegin.
	CobeginBudget int
	// MaxLoopIter bounds the countdown-loop trip count (min 1).
	MaxLoopIter int
	// RecDepth bounds the constant passed to recursive calls: a call
	// f(RecDepth) makes RecDepth+1 activations of f.
	RecDepth int
	// MaxExprDepth bounds expression-tree depth.
	MaxExprDepth int
	// MaxSteps is an approximate ceiling on the dynamic statement count of
	// one run. The generator charges each construct against a per-function
	// cost budget (loops multiply, calls add the callee's worst case), so
	// nesting loops, calls, and recursion cannot compose into a program
	// whose single execution — let alone its interleaving space — is
	// intractably large.
	MaxSteps int
	// Feature toggles.
	Alloc         bool // malloc + pointer locals
	Free          bool // free statements (implies dangling-pointer errors)
	Asserts       bool // assert statements (may fail: error terminals)
	Recursion     bool // self-recursive value helpers
	FirstClassFns bool // function-valued locals and indirect calls
}

// DefaultProfile is the soak default: every construct enabled, sized so
// full concrete exploration typically stays in the low thousands of
// configurations.
func DefaultProfile() Profile {
	return Profile{
		Globals:       3,
		PtrGlobals:    1,
		ValueFuncs:    2,
		VoidFuncs:     1,
		MaxBlockStmts: 4,
		MaxDepth:      2,
		MaxArms:       3,
		CobeginBudget: 2,
		MaxLoopIter:   3,
		RecDepth:      2,
		MaxExprDepth:  3,
		MaxSteps:      400,
		Alloc:         true,
		Free:          true,
		Asserts:       true,
		Recursion:     true,
		FirstClassFns: true,
	}
}

// SmallProfile generates tiny programs (quick smoke runs and shrinker
// tests).
func SmallProfile() Profile {
	p := DefaultProfile()
	p.Globals = 2
	p.PtrGlobals = 0
	p.ValueFuncs = 1
	p.VoidFuncs = 0
	p.MaxBlockStmts = 3
	p.MaxDepth = 1
	p.MaxArms = 2
	p.CobeginBudget = 1
	p.MaxLoopIter = 2
	p.RecDepth = 1
	p.MaxExprDepth = 2
	p.MaxSteps = 120
	p.Alloc = false
	p.Free = false
	p.FirstClassFns = false
	return p
}

// BigProfile stretches every knob (nightly soak): deeper cobegin nesting,
// recursion at the activation limit, more allocation sites.
func BigProfile() Profile {
	p := DefaultProfile()
	p.Globals = 4
	p.PtrGlobals = 2
	p.ValueFuncs = 3
	p.VoidFuncs = 2
	p.MaxBlockStmts = 5
	p.MaxDepth = 3
	p.MaxArms = 4
	p.CobeginBudget = 3
	p.MaxLoopIter = 4
	p.RecDepth = 3
	p.MaxExprDepth = 4
	p.MaxSteps = 900
	return p
}

// normalize clamps a profile to its documented minima so Generate cannot
// be driven out of the grammar.
func (p Profile) normalize() Profile {
	clamp := func(v *int, min int) {
		if *v < min {
			*v = min
		}
	}
	clamp(&p.Globals, 1)
	clamp(&p.PtrGlobals, 0)
	clamp(&p.ValueFuncs, 0)
	clamp(&p.VoidFuncs, 0)
	clamp(&p.MaxBlockStmts, 1)
	clamp(&p.MaxDepth, 0)
	clamp(&p.MaxArms, 2)
	clamp(&p.CobeginBudget, 0)
	clamp(&p.MaxLoopIter, 1)
	clamp(&p.RecDepth, 0)
	clamp(&p.MaxExprDepth, 1)
	clamp(&p.MaxSteps, 60)
	if !p.Alloc {
		p.PtrGlobals = 0
		p.Free = false
	}
	return p
}

// Name returns the profile's registry name if it matches a stock profile
// ("" otherwise); the soak CLI and reports use it.
func (p Profile) Name() string {
	switch p {
	case DefaultProfile():
		return "default"
	case SmallProfile():
		return "small"
	case BigProfile():
		return "big"
	}
	return ""
}

// ProfileByName resolves a stock profile name.
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "default":
		return DefaultProfile(), true
	case "small":
		return SmallProfile(), true
	case "big":
		return BigProfile(), true
	}
	return Profile{}, false
}

// Generate produces the program for (seed, profile): deterministic,
// parsed, and resolved. The error return is defensive — a non-nil error
// means the generator itself emitted an invalid program, which the
// property tests pin as impossible.
func Generate(seed int64, profile Profile) (*lang.Program, string, error) {
	src := GenerateSource(seed, profile)
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, src, fmt.Errorf("progen: seed %d generated invalid program: %w", seed, err)
	}
	return prog, src, nil
}

// GenerateSource produces just the source text for (seed, profile).
func GenerateSource(seed int64, profile Profile) string {
	g := &gen{
		r: rand.New(rand.NewSource(seed)),
		p: profile.normalize(),
	}
	return g.program()
}

// fnSig describes a generated helper procedure.
type fnSig struct {
	name      string
	params    int
	value     bool // returns a value on every path
	recursive bool // param 0 is the recursion bound
	cost      int  // worst-case dynamic steps of one call, activations included
}

// varKind classifies generated locals by the value they are known to hold.
type varKind uint8

const (
	vInt varKind = iota
	vPtr
	vFn
)

// local is one in-scope binding during generation.
type local struct {
	name string
	kind varKind
	arm  int   // arm context id at declaration (0 = function top level)
	ro   bool  // read-only: loop counters and recursion bounds
	fn   fnSig // callee signature for vFn
}

type gen struct {
	r *rand.Rand
	p Profile

	intGlobals []string
	ptrGlobals []string
	funcs      []fnSig // generated helpers, callable by later functions

	seq int // fresh-name counter (also keeps labels program-unique)

	b      strings.Builder
	indent int
}

// ctx is the per-function generation context.
type ctx struct {
	locals   []local
	armSeq   int // arm context id allocator (per function)
	armID    int // current arm context (0 = top level)
	cobegins int // remaining cobegin budget in this function
	depth    int // remaining if/while nesting budget
	callable []fnSig

	cost   int // accumulated worst-case dynamic steps of this activation
	mult   int // loop-nesting multiplier applied to new statements (≥ 1)
	budget int // cost ceiling for this function body
}

// charge records n dynamic steps at the current loop multiplier.
func (c *ctx) charge(n int) { c.cost += c.mult * n }

// remaining reports how many multiplier-units of cost budget are left:
// a statement costing up to remaining() more units still fits.
func (c *ctx) remaining() int {
	r := (c.budget - c.cost) / c.mult
	if r < 0 {
		return 0
	}
	return r
}

func (g *gen) fresh(prefix string) string {
	g.seq++
	return fmt.Sprintf("%s%d", prefix, g.seq)
}

func (g *gen) line(format string, args ...any) {
	g.b.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// pct reports true with probability n/100.
func (g *gen) pct(n int) bool { return g.r.Intn(100) < n }

func (g *gen) program() string {
	for i := 0; i < g.p.Globals; i++ {
		name := g.fresh("g")
		g.intGlobals = append(g.intGlobals, name)
		if g.pct(40) {
			g.line("var %s = %d;", name, g.r.Intn(5))
		} else {
			g.line("var %s;", name)
		}
	}
	for i := 0; i < g.p.PtrGlobals; i++ {
		name := g.fresh("p")
		g.ptrGlobals = append(g.ptrGlobals, name)
		g.line("var %s;", name)
	}
	g.line("")

	for i := 0; i < g.p.ValueFuncs; i++ {
		rec := g.p.Recursion && (i == 0 || g.pct(50))
		g.valueFunc(rec)
	}
	for i := 0; i < g.p.VoidFuncs; i++ {
		g.voidFunc()
	}
	g.mainFunc()
	return g.b.String()
}

// valueFunc emits a helper that returns on every path. Recursive helpers
// follow the bounded template
//
//	func f(n, ...) {
//	  if n > 0 { var t = f(n - 1, ...); ...; return t + e; }
//	  ...
//	  return e;
//	}
//
// so a call f(k) makes exactly k+1 activations.
func (g *gen) valueFunc(recursive bool) {
	sig := fnSig{name: g.fresh("vf"), params: 1 + g.r.Intn(2), value: true, recursive: recursive}
	c := &ctx{depth: g.p.MaxDepth, callable: append([]fnSig(nil), g.funcs...), mult: 1}
	// Helpers get a slice of the program's step budget; a recursive helper's
	// body budget is divided by its activation count so the whole recursion
	// tower still fits the slice. Recursion happens only through the bounded
	// template call — the helper is deliberately NOT in its own callable
	// set, since a generated self-call would pass a fresh constant bound and
	// recurse forever.
	c.budget = g.p.MaxSteps / 6
	if recursive {
		c.budget = g.p.MaxSteps / (6 * (g.p.RecDepth + 1))
	}
	if c.budget < 8 {
		c.budget = 8
	}
	params := make([]string, sig.params)
	for i := range params {
		params[i] = g.fresh("a")
		c.locals = append(c.locals, local{name: params[i], kind: vInt, ro: recursive && i == 0})
	}
	g.line("func %s(%s) {", sig.name, strings.Join(params, ", "))
	g.indent++
	if recursive {
		n := params[0]
		g.line("if %s > 0 {", n)
		g.indent++
		save := len(c.locals)
		t := g.fresh("t")
		args := []string{n + " - 1"}
		for i := 1; i < sig.params; i++ {
			args = append(args, g.intExpr(c, 1))
		}
		g.line("var %s = %s(%s);", t, sig.name, strings.Join(args, ", "))
		c.charge(2) // branch test + the recursive call statement itself
		c.locals = append(c.locals, local{name: t, kind: vInt})
		g.stmts(c, g.r.Intn(2))
		g.line("return %s + %s;", t, g.intExpr(c, 1))
		c.charge(1)
		c.locals = c.locals[:save]
		g.indent--
		g.line("}")
	}
	g.stmts(c, g.r.Intn(2))
	g.line("return %s;", g.intExpr(c, g.p.MaxExprDepth-1))
	c.charge(1)
	g.indent--
	g.line("}")
	g.line("")
	sig.cost = c.cost
	if recursive {
		// One call runs up to RecDepth+1 activations of the body.
		sig.cost = (c.cost + 1) * (g.p.RecDepth + 1)
	}
	g.funcs = append(g.funcs, sig)
}

// voidFunc emits a helper called only for effect; it may itself contain a
// cobegin (budget permitting), so calls from arms create nested
// parallelism.
func (g *gen) voidFunc() {
	sig := fnSig{name: g.fresh("hf"), params: g.r.Intn(2)}
	c := &ctx{
		depth:    g.p.MaxDepth,
		cobegins: maxInt(0, g.p.CobeginBudget-1),
		callable: append([]fnSig(nil), g.funcs...),
		mult:     1,
		budget:   maxInt(8, g.p.MaxSteps/4),
	}
	params := make([]string, sig.params)
	for i := range params {
		params[i] = g.fresh("a")
		c.locals = append(c.locals, local{name: params[i], kind: vInt})
	}
	g.line("func %s(%s) {", sig.name, strings.Join(params, ", "))
	g.indent++
	g.stmts(c, 1+g.r.Intn(g.p.MaxBlockStmts))
	g.indent--
	g.line("}")
	g.line("")
	sig.cost = c.cost
	g.funcs = append(g.funcs, sig)
}

func (g *gen) mainFunc() {
	c := &ctx{
		depth:    g.p.MaxDepth,
		cobegins: g.p.CobeginBudget,
		callable: append([]fnSig(nil), g.funcs...),
		mult:     1,
		budget:   g.p.MaxSteps,
	}
	g.line("func main() {")
	g.indent++
	// Prologue: every pointer global is seeded with an initialized cell
	// before any concurrency, so later derefs race on values, not on
	// definedness.
	for _, pg := range g.ptrGlobals {
		g.line("%s = malloc(%d);", pg, 1+g.r.Intn(2))
		g.line("*%s = %d;", pg, g.r.Intn(5))
		c.charge(2)
	}
	// Reserve one cobegin from the budget: the spine of every generated
	// program is at least one cobegin, and the reservation keeps the
	// per-function total within CobeginBudget.
	c.cobegins--
	pre := g.r.Intn(g.p.MaxBlockStmts)
	g.stmts(c, pre)
	c.cobegins++
	if c.cobegins <= 0 {
		c.cobegins = 1
	}
	g.cobeginStmt(c)
	g.stmts(c, g.r.Intn(g.p.MaxBlockStmts))
	g.indent--
	g.line("}")
}

// stmts emits n statements into the current block.
func (g *gen) stmts(c *ctx, n int) {
	for i := 0; i < n; i++ {
		g.stmt(c)
	}
}

// label returns an occasional unique statement label prefix.
func (g *gen) label() string {
	if g.pct(12) {
		return g.fresh("L") + ": "
	}
	return ""
}

// stmt emits one statement, chosen from the constructs available in this
// context with fixed weights.
func (g *gen) stmt(c *ctx) {
	type choice struct {
		weight int
		emit   func()
	}
	var choices []choice
	add := func(w int, f func()) { choices = append(choices, choice{w, f}) }

	// Expensive constructs are offered only while the cost budget has room
	// for their worst case at the current loop multiplier.
	rem := c.remaining()

	add(5, func() { g.assignGlobal(c) })
	add(2, func() { g.declInt(c) })
	add(1, func() { g.line("%sskip;", g.label()); c.charge(1) })
	if g.assignableInt(c) != "" {
		add(3, func() { g.assignLocal(c) })
	}
	if c.depth > 0 {
		if rem >= 2*(g.p.MaxBlockStmts+1) {
			add(2, func() { g.ifStmt(c) })
		}
		if rem >= g.p.MaxLoopIter*(g.p.MaxBlockStmts+2)+1 {
			add(2, func() { g.whileStmt(c) })
		}
	}
	if c.cobegins > 0 && g.p.MaxArms >= 2 && rem >= g.p.MaxArms*(g.p.MaxBlockStmts+1) {
		add(2, func() { g.cobeginStmt(c) })
	}
	if len(g.affordable(c)) > 0 {
		add(2, func() { g.callStmt(c) })
		if g.p.FirstClassFns {
			add(1, func() { g.fnLocal(c) })
		}
	}
	if g.p.Alloc {
		add(2, func() { g.declPtr(c) })
		if g.ptrVar(c) != "" {
			add(2, func() { g.storePtr(c) })
			add(1, func() { g.readPtr(c) })
		}
		if len(g.ptrGlobals) > 0 {
			add(1, func() { g.addrOf(c) })
		}
		if g.p.Free && g.freeablePtr(c) != "" {
			add(1, func() { g.freeStmt(c) })
		}
	}
	if g.p.Asserts {
		add(1, func() { g.line("%sassert %s;", g.label(), g.boolExpr(c, 1)); c.charge(1) })
	}

	total := 0
	for _, ch := range choices {
		total += ch.weight
	}
	n := g.r.Intn(total)
	for _, ch := range choices {
		if n < ch.weight {
			ch.emit()
			return
		}
		n -= ch.weight
	}
}

// affordable returns the callable helpers whose worst-case cost still
// fits the remaining budget at the current multiplier.
func (g *gen) affordable(c *ctx) []fnSig {
	rem := c.remaining()
	var out []fnSig
	for _, f := range c.callable {
		if 1+f.cost <= rem {
			out = append(out, f)
		}
	}
	return out
}

// assignableInt returns a random assignable integer local ("" if none):
// declared in the current arm context and not read-only.
func (g *gen) assignableInt(c *ctx) string {
	var cands []string
	for _, v := range c.locals {
		if v.kind == vInt && v.arm == c.armID && !v.ro {
			cands = append(cands, v.name)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return cands[g.r.Intn(len(cands))]
}

// ptrVar returns a random readable pointer variable ("" if none): any
// pointer local in scope or any pointer global.
func (g *gen) ptrVar(c *ctx) string {
	var cands []string
	for _, v := range c.locals {
		if v.kind == vPtr {
			cands = append(cands, v.name)
		}
	}
	cands = append(cands, g.ptrGlobals...)
	if len(cands) == 0 {
		return ""
	}
	return cands[g.r.Intn(len(cands))]
}

// freeablePtr returns a random pointer local that is guaranteed
// heap-directed ("" if none). Pointer globals are excluded: &global can
// be stored into them, and freeing a global address is a static mistake
// rather than an interesting runtime interleaving.
func (g *gen) freeablePtr(c *ctx) string {
	var cands []string
	for _, v := range c.locals {
		if v.kind == vPtr {
			cands = append(cands, v.name)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return cands[g.r.Intn(len(cands))]
}

func (g *gen) assignGlobal(c *ctx) {
	tgt := g.intGlobals[g.r.Intn(len(g.intGlobals))]
	c.charge(1)
	if g.pct(15) {
		if call, ok := g.callExpr(c); ok {
			g.line("%s%s = %s;", g.label(), tgt, call)
			return
		}
	}
	g.line("%s%s = %s;", g.label(), tgt, g.intExpr(c, g.p.MaxExprDepth))
}

func (g *gen) assignLocal(c *ctx) {
	tgt := g.assignableInt(c)
	c.charge(1)
	if tgt == "" {
		g.line("skip;")
		return
	}
	if g.pct(15) {
		if call, ok := g.callExpr(c); ok {
			g.line("%s%s = %s;", g.label(), tgt, call)
			return
		}
	}
	g.line("%s%s = %s;", g.label(), tgt, g.intExpr(c, g.p.MaxExprDepth))
}

func (g *gen) declInt(c *ctx) {
	name := g.fresh("x")
	c.charge(1)
	init := g.intExpr(c, g.p.MaxExprDepth-1)
	if g.pct(20) {
		if call, ok := g.callExpr(c); ok {
			init = call
		}
	}
	g.line("var %s = %s;", name, init)
	c.locals = append(c.locals, local{name: name, kind: vInt, arm: c.armID})
}

// declPtr declares a heap pointer and initializes its first cell, so
// reads through it are defined unless a free or re-malloc races in.
func (g *gen) declPtr(c *ctx) {
	name := g.fresh("q")
	c.charge(2)
	g.line("var %s = malloc(%d);", name, 1+g.r.Intn(2))
	g.line("*%s = %s;", name, g.intExpr(c, 1))
	c.locals = append(c.locals, local{name: name, kind: vPtr, arm: c.armID})
}

func (g *gen) storePtr(c *ctx) {
	p := g.ptrVar(c)
	c.charge(1)
	g.line("%s*%s = %s;", g.label(), p, g.intExpr(c, g.p.MaxExprDepth-1))
}

func (g *gen) readPtr(c *ctx) {
	p := g.ptrVar(c)
	c.charge(1)
	if tgt := g.assignableInt(c); tgt != "" && g.pct(50) {
		g.line("%s = *%s;", tgt, p)
		return
	}
	g.line("%s = *%s;", g.intGlobals[g.r.Intn(len(g.intGlobals))], p)
}

func (g *gen) addrOf(c *ctx) {
	pg := g.ptrGlobals[g.r.Intn(len(g.ptrGlobals))]
	c.charge(1)
	g.line("%s = &%s;", pg, g.intGlobals[g.r.Intn(len(g.intGlobals))])
}

func (g *gen) freeStmt(c *ctx) {
	c.charge(1)
	g.line("%sfree(%s);", g.label(), g.freeablePtr(c))
}

// fnLocal binds a helper to a function-valued local and calls through it.
func (g *gen) fnLocal(c *ctx) {
	afford := g.affordable(c)
	if len(afford) == 0 {
		g.line("skip;")
		c.charge(1)
		return
	}
	callee := afford[g.r.Intn(len(afford))]
	name := g.fresh("h")
	c.charge(2 + callee.cost)
	g.line("var %s = %s;", name, callee.name)
	c.locals = append(c.locals, local{name: name, kind: vFn, arm: c.armID, fn: callee})
	g.line("%s(%s);", name, g.callArgs(c, callee))
}

// callStmt calls a helper for effect (result dropped).
func (g *gen) callStmt(c *ctx) {
	afford := g.affordable(c)
	if len(afford) == 0 {
		g.line("skip;")
		c.charge(1)
		return
	}
	callee := afford[g.r.Intn(len(afford))]
	c.charge(1 + callee.cost)
	g.line("%s%s(%s);", g.label(), callee.name, g.callArgs(c, callee))
}

// callExpr returns a value-helper call usable as an entire right-hand
// side (ok=false when no value helper fits the remaining cost budget).
func (g *gen) callExpr(c *ctx) (string, bool) {
	var vals []fnSig
	for _, f := range g.affordable(c) {
		if f.value {
			vals = append(vals, f)
		}
	}
	if len(vals) == 0 {
		return "", false
	}
	callee := vals[g.r.Intn(len(vals))]
	c.charge(1 + callee.cost)
	return fmt.Sprintf("%s(%s)", callee.name, g.callArgs(c, callee)), true
}

// callArgs builds an argument list: recursion bounds get a small constant,
// everything else a shallow integer expression.
func (g *gen) callArgs(c *ctx, callee fnSig) string {
	args := make([]string, callee.params)
	for i := range args {
		if callee.recursive && i == 0 {
			args[i] = fmt.Sprintf("%d", g.r.Intn(g.p.RecDepth+1))
		} else {
			args[i] = g.intExpr(c, 1)
		}
	}
	return strings.Join(args, ", ")
}

func (g *gen) ifStmt(c *ctx) {
	c.charge(1)
	g.line("%sif %s {", g.label(), g.boolExpr(c, 2))
	g.indent++
	c.depth--
	save := len(c.locals)
	g.stmts(c, 1+g.r.Intn(g.p.MaxBlockStmts))
	c.locals = c.locals[:save]
	g.indent--
	if g.pct(40) {
		g.line("} else {")
		g.indent++
		save = len(c.locals)
		g.stmts(c, 1+g.r.Intn(g.p.MaxBlockStmts))
		c.locals = c.locals[:save]
		g.indent--
	}
	c.depth++
	g.line("}")
}

// whileStmt emits the bounded countdown template: the counter is a fresh
// read-only local, so the loop terminates under every interleaving.
func (g *gen) whileStmt(c *ctx) {
	i := g.fresh("i")
	bound := 1 + g.r.Intn(g.p.MaxLoopIter)
	c.charge(1)
	g.line("var %s = %d;", i, bound)
	c.locals = append(c.locals, local{name: i, kind: vInt, arm: c.armID, ro: true})
	g.line("%swhile %s > 0 {", g.label(), i)
	g.indent++
	c.depth--
	// Body statements run up to bound times: scale their cost.
	savedMult := c.mult
	c.mult *= bound
	c.charge(2) // per-iteration loop-header test + counter decrement
	save := len(c.locals)
	g.stmts(c, 1+g.r.Intn(maxInt(1, g.p.MaxBlockStmts-1)))
	c.locals = c.locals[:save]
	c.mult = savedMult
	g.line("%s = %s - 1;", i, i)
	c.depth++
	g.indent--
	g.line("}")
}

// cobeginStmt forks 2..MaxArms arms. Locals declared outside become
// read-only inside each arm (the resolver's rule); each arm gets a fresh
// arm context so its own declarations are assignable again.
func (g *gen) cobeginStmt(c *ctx) {
	c.cobegins--
	c.charge(2) // fork + join
	arms := 2 + g.r.Intn(g.p.MaxArms-1)
	g.b.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.b, "%scobegin {\n", g.label())
	g.indent++
	savedArm := c.armID
	for a := 0; a < arms; a++ {
		if a > 0 {
			g.indent--
			g.line("} || {")
			g.indent++
		}
		c.armSeq++
		c.armID = c.armSeq
		save := len(c.locals)
		g.stmts(c, 1+g.r.Intn(g.p.MaxBlockStmts))
		c.locals = c.locals[:save]
	}
	c.armID = savedArm
	g.indent--
	g.line("} coend")
}

// intExpr emits an integer-valued expression of at most depth d. Division
// and modulus always take a nonzero literal divisor, so the only runtime
// faults generated programs can hit are races the semantics is supposed
// to model (dangling pointers, failed asserts), never trivial div-by-zero.
func (g *gen) intExpr(c *ctx, d int) string {
	if d <= 0 || g.pct(40) {
		return g.intAtom(c)
	}
	op := [...]string{"+", "-", "*", "/", "%"}[g.r.Intn(5)]
	if op == "/" || op == "%" {
		return fmt.Sprintf("(%s %s %d)", g.intExpr(c, d-1), op, 1+g.r.Intn(4))
	}
	return fmt.Sprintf("(%s %s %s)", g.intExpr(c, d-1), op, g.intExpr(c, d-1))
}

func (g *gen) intAtom(c *ctx) string {
	var cands []string
	for _, v := range c.locals {
		if v.kind == vInt {
			cands = append(cands, v.name)
		}
	}
	cands = append(cands, g.intGlobals...)
	switch {
	case g.pct(35) || len(cands) == 0:
		n := g.r.Intn(10)
		if g.pct(15) {
			return fmt.Sprintf("(-%d)", n)
		}
		return fmt.Sprintf("%d", n)
	case g.p.Alloc && g.pct(20):
		if p := g.ptrVar(c); p != "" {
			return "*" + p
		}
		fallthrough
	default:
		return cands[g.r.Intn(len(cands))]
	}
}

// boolExpr emits a condition of at most depth d.
func (g *gen) boolExpr(c *ctx, d int) string {
	if d <= 0 {
		return g.cmpExpr(c)
	}
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s && %s)", g.boolExpr(c, d-1), g.boolExpr(c, d-1))
	case 1:
		return fmt.Sprintf("(%s || %s)", g.boolExpr(c, d-1), g.boolExpr(c, d-1))
	case 2:
		return "!" + g.cmpExpr(c)
	default:
		return g.cmpExpr(c)
	}
}

func (g *gen) cmpExpr(c *ctx) string {
	op := [...]string{"==", "!=", "<", "<=", ">", ">="}[g.r.Intn(6)]
	return fmt.Sprintf("%s %s %s", g.intExpr(c, 1), op, g.intExpr(c, 1))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
