package progen

import (
	"fmt"
	"math/rand"

	"psa/internal/lang"
)

// Mutate applies one seed-reproducible, single-procedure edit to a
// cobegin program and returns the edited source plus a short description
// of the edit. The catalogue mirrors the edit classes the incremental
// analysis layer distinguishes (testdata/edits has a hand-written chain
// per class):
//
//   - rename a parameter (α-neutral: a no-op edit for the analysis
//     unless clan folding is on),
//   - tweak an integer literal assigned to a global (a value edit that
//     invalidates exactly the enclosing procedure's dependents),
//   - insert a skip or an always-true assert (a structural edit),
//   - append a skip to a cobegin arm (a concurrency-structure edit),
//   - add an uncalled procedure / delete an uncalled non-main procedure
//     (function-list edits, which shift the summary epoch).
//
// The same (src, seed) pair always yields the same edit, and the result
// always re-parses: Mutate is the edit generator behind psasoak's
// oracle 5, so reproducibility from the reported seed is part of its
// contract. An unparseable input returns an error.
func Mutate(src string, seed int64) (out, desc string, err error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", "", fmt.Errorf("progen: mutate input does not parse: %w", err)
	}
	r := rand.New(rand.NewSource(seed))

	type edit struct {
		desc  string
		apply func()
	}
	var edits []edit
	add := func(desc string, apply func()) {
		edits = append(edits, edit{desc: desc, apply: apply})
	}

	used := usedNames(prog)
	freshName := func(base string) string {
		name := base
		for used[name] {
			name += "r"
		}
		used[name] = true
		return name
	}

	for _, f := range prog.Funcs {
		fn := f
		// Rename a parameter not shadowed by a local declaration — then
		// every RefLocal reference to that name in the body is the
		// parameter, and a uniform rewrite is correct.
		for pi, param := range fn.Params {
			if param == "" || redeclares(fn.Body, param) {
				continue
			}
			pi, param := pi, param
			add(fmt.Sprintf("rename param %s of %s", param, fn.Name), func() {
				nn := freshName(param + "r")
				fn.Params[pi] = nn
				lang.WalkStmts(fn.Body, func(s lang.Stmt) {
					lang.WalkExprs(s, func(e lang.Expr) {
						if vr, ok := e.(*lang.VarRef); ok && vr.Kind == lang.RefLocal && vr.Name == param {
							vr.Name = nn
						}
					})
				})
			})
		}
		lang.WalkStmts(fn.Body, func(s lang.Stmt) {
			switch s := s.(type) {
			case *lang.AssignStmt:
				vr, isVar := s.Target.(*lang.VarRef)
				lit, isLit := s.Value.(*lang.IntLit)
				if isVar && vr.Kind == lang.RefGlobal && isLit {
					add(fmt.Sprintf("tweak literal %s=%d in %s", vr.Name, lit.Value, fn.Name),
						func() { lit.Value++ })
				}
			case *lang.CobeginStmt:
				for ai, arm := range s.Arms {
					arm := arm
					add(fmt.Sprintf("append skip to cobegin arm %d in %s", ai, fn.Name),
						func() { arm.Stmts = append(arm.Stmts, &lang.SkipStmt{}) })
				}
			}
		})
		blocks := bodyBlocks(fn.Body)
		for _, b := range blocks {
			b := b
			add(fmt.Sprintf("insert skip in %s", fn.Name), func() {
				insertStmt(b, r.Intn(len(b.Stmts)+1), &lang.SkipStmt{})
			})
			add(fmt.Sprintf("insert assert in %s", fn.Name), func() {
				insertStmt(b, r.Intn(len(b.Stmts)+1),
					&lang.AssertStmt{Cond: &lang.IntLit{Value: 1}})
			})
		}
		if fn.Name != "main" && !referenced(prog, fn) {
			add("delete uncalled procedure "+fn.Name, func() {
				for i, g := range prog.Funcs {
					if g == fn {
						prog.Funcs = append(prog.Funcs[:i], prog.Funcs[i+1:]...)
						break
					}
				}
			})
		}
	}
	add("add uncalled procedure", func() {
		name := freshName("mz")
		prog.Funcs = append(prog.Funcs, &lang.FuncDecl{
			Name: name,
			Body: &lang.Block{Stmts: []lang.Stmt{&lang.SkipStmt{}}},
		})
	})

	e := edits[r.Intn(len(edits))]
	e.apply()
	out = lang.Format(prog)
	if _, err := lang.Parse(out); err != nil {
		return "", "", fmt.Errorf("progen: mutation %q broke the program: %w\n%s", e.desc, err, out)
	}
	return out, e.desc, nil
}

// usedNames collects every identifier that could collide with a fresh
// name: globals, functions, parameters, and declared locals.
func usedNames(p *lang.Program) map[string]bool {
	used := map[string]bool{}
	for _, g := range p.Globals {
		used[g.Name] = true
	}
	for _, f := range p.Funcs {
		used[f.Name] = true
		for _, prm := range f.Params {
			used[prm] = true
		}
		lang.WalkStmts(f.Body, func(s lang.Stmt) {
			if vs, ok := s.(*lang.VarStmt); ok {
				used[vs.Name] = true
			}
		})
	}
	return used
}

// redeclares reports whether any local declaration in the body shadows
// name.
func redeclares(b *lang.Block, name string) bool {
	found := false
	lang.WalkStmts(b, func(s lang.Stmt) {
		if vs, ok := s.(*lang.VarStmt); ok && vs.Name == name {
			found = true
		}
	})
	return found
}

// referenced reports whether fn's name appears as a function reference
// anywhere in the program (calls and first-class uses alike).
func referenced(p *lang.Program, fn *lang.FuncDecl) bool {
	found := false
	for _, f := range p.Funcs {
		lang.WalkStmts(f.Body, func(s lang.Stmt) {
			lang.WalkExprs(s, func(e lang.Expr) {
				if vr, ok := e.(*lang.VarRef); ok && vr.Kind == lang.RefFunc && vr.Name == fn.Name {
					found = true
				}
			})
		})
	}
	return found
}

// bodyBlocks lists every block of a function body, outermost first.
func bodyBlocks(b *lang.Block) []*lang.Block {
	out := []*lang.Block{b}
	lang.WalkStmts(b, func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.IfStmt:
			out = append(out, s.Then)
			if s.Else != nil {
				out = append(out, s.Else)
			}
		case *lang.WhileStmt:
			out = append(out, s.Body)
		case *lang.CobeginStmt:
			out = append(out, s.Arms...)
		}
	})
	return out
}

func insertStmt(b *lang.Block, at int, s lang.Stmt) {
	b.Stmts = append(b.Stmts, nil)
	copy(b.Stmts[at+1:], b.Stmts[at:])
	b.Stmts[at] = s
}
