package progen

import (
	"strings"
	"testing"

	"psa/internal/explore"
	"psa/internal/lang"
	"psa/internal/sem"
)

// propertySeeds is the seed count the generator properties sweep. 1000
// seeds take well under a second per property; -short quarters it.
func propertySeeds(t *testing.T) int64 {
	if testing.Short() {
		return 250
	}
	return 1000
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := GenerateSource(seed, DefaultProfile())
		b := GenerateSource(seed, DefaultProfile())
		if a != b {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
	if GenerateSource(1, DefaultProfile()) == GenerateSource(2, DefaultProfile()) {
		t.Fatal("seeds 1 and 2 generated identical programs")
	}
}

// Every generated program must parse + resolve, and its printed form must
// round-trip: parse(print(p)) prints identically. This is the property
// that makes generated programs valid seeds for the parser fuzz targets.
func TestGeneratedProgramsRoundTrip(t *testing.T) {
	profiles := []Profile{DefaultProfile(), SmallProfile(), BigProfile()}
	n := propertySeeds(t)
	for _, prof := range profiles {
		for seed := int64(0); seed < n; seed++ {
			prog, src, err := Generate(seed, prof)
			if err != nil {
				t.Fatalf("profile %q seed %d: %v\n%s", prof.Name(), seed, err, src)
			}
			text := lang.Format(prog)
			again, err := lang.Parse(text)
			if err != nil {
				t.Fatalf("profile %q seed %d: printed form does not reparse: %v\n%s",
					prof.Name(), seed, err, text)
			}
			if got := lang.Format(again); got != text {
				t.Fatalf("profile %q seed %d: print→parse→print not stable:\n--- first\n%s\n--- second\n%s",
					prof.Name(), seed, text, got)
			}
		}
	}
}

// Generated programs must terminate under the deterministic scheduler —
// loops count down read-only locals and recursion is constant-bounded, so
// a step-budget blowout is a generator bug.
func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		prog, src, err := Generate(seed, DefaultProfile())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sem.Run(prog, 200_000); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

// Profile knobs are hard bounds: declared counts are exact, and arm
// counts, loop bounds, and per-function cobegin totals stay inside the
// profile across the sweep.
func TestProfileKnobsRespected(t *testing.T) {
	prof := DefaultProfile()
	n := propertySeeds(t)
	for seed := int64(0); seed < n; seed++ {
		prog, src, err := Generate(seed, prof)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(prog.Globals), prof.Globals+prof.PtrGlobals; got != want {
			t.Fatalf("seed %d: %d globals, want %d", seed, got, want)
		}
		if got, want := len(prog.Funcs), prof.ValueFuncs+prof.VoidFuncs+1; got != want {
			t.Fatalf("seed %d: %d funcs, want %d", seed, got, want)
		}
		for _, f := range prog.Funcs {
			cobegins := 0
			lang.WalkStmts(f.Body, func(s lang.Stmt) {
				switch s := s.(type) {
				case *lang.CobeginStmt:
					cobegins++
					if len(s.Arms) < 2 || len(s.Arms) > prof.MaxArms {
						t.Fatalf("seed %d: cobegin with %d arms (max %d)\n%s",
							seed, len(s.Arms), prof.MaxArms, src)
					}
				case *lang.WhileStmt:
					// Countdown template: "while i > 0" over a counter
					// initialized to a literal ≤ MaxLoopIter.
					cmp, ok := s.Cond.(*lang.BinaryExpr)
					if !ok || cmp.Op != lang.TokGt {
						t.Fatalf("seed %d: loop condition %q is not a countdown",
							seed, lang.ExprString(s.Cond))
					}
				}
			})
			budget := prof.CobeginBudget
			if f.Name == "main" && budget < 1 {
				budget = 1 // main always gets its spine cobegin
			}
			if cobegins > budget {
				t.Fatalf("seed %d: %s has %d cobegins, budget %d\n%s",
					seed, f.Name, cobegins, budget, src)
			}
		}
		// Loop bounds: every generated counter initializer is a literal
		// within MaxLoopIter.
		for _, line := range strings.Split(src, "\n") {
			line = strings.TrimSpace(line)
			if strings.HasPrefix(line, "var i") && strings.Contains(line, "= ") {
				// var iN = K;
				k := strings.TrimSuffix(line[strings.Index(line, "= ")+2:], ";")
				if len(k) == 1 && (k[0] < '1' || int(k[0]-'0') > prof.MaxLoopIter) {
					t.Fatalf("seed %d: loop bound %q outside 1..%d", seed, k, prof.MaxLoopIter)
				}
			}
		}
	}
}

// Across the sweep, every language construct must be reachable: the
// generator is only a useful differential driver if it exercises the
// whole surface.
func TestAllConstructsReachable(t *testing.T) {
	seen := map[string]bool{}
	n := propertySeeds(t)
	for seed := int64(0); seed < n; seed++ {
		prog, _, err := Generate(seed, DefaultProfile())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range prog.Funcs {
			lang.WalkStmts(f.Body, func(s lang.Stmt) {
				switch s.(type) {
				case *lang.CobeginStmt:
					seen["cobegin"] = true
				case *lang.IfStmt:
					seen["if"] = true
				case *lang.WhileStmt:
					seen["while"] = true
				case *lang.CallStmt:
					seen["call"] = true
				case *lang.AssertStmt:
					seen["assert"] = true
				case *lang.FreeStmt:
					seen["free"] = true
				case *lang.SkipStmt:
					seen["skip"] = true
				case *lang.ReturnStmt:
					seen["return"] = true
				case *lang.VarStmt:
					seen["var"] = true
				case *lang.AssignStmt:
					seen["assign"] = true
				}
				if s.Label() != "" {
					seen["label"] = true
				}
				lang.WalkExprs(s, func(e lang.Expr) {
					switch e.(type) {
					case *lang.MallocExpr:
						seen["malloc"] = true
					case *lang.DerefExpr:
						seen["deref"] = true
					case *lang.AddrExpr:
						seen["addrof"] = true
					case *lang.UnaryExpr:
						seen["unary"] = true
					case *lang.BinaryExpr:
						seen["binary"] = true
					case *lang.CallExpr:
						seen["callexpr"] = true
					}
				})
			})
		}
		// Nested cobegin (deep parallelism) must be reachable too.
		for _, f := range prog.Funcs {
			lang.WalkStmts(f.Body, func(s lang.Stmt) {
				if cb, ok := s.(*lang.CobeginStmt); ok {
					for _, arm := range cb.Arms {
						lang.WalkStmts(arm, func(inner lang.Stmt) {
							if _, ok := inner.(*lang.CobeginStmt); ok {
								seen["nested-cobegin"] = true
							}
						})
					}
				}
			})
		}
	}
	want := []string{
		"cobegin", "nested-cobegin", "if", "while", "call", "assert", "free",
		"skip", "return", "var", "assign", "label",
		"malloc", "deref", "addrof", "unary", "binary", "callexpr",
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("construct %q never generated across %d seeds", w, n)
		}
	}
}

// A quick exploration smoke: generated programs must be explorable and
// reduction-safe on a sample (the soak harness runs this at scale).
func TestGeneratedProgramsExplore(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration sweep")
	}
	for seed := int64(0); seed < 15; seed++ {
		prog, src, err := Generate(seed, SmallProfile())
		if err != nil {
			t.Fatal(err)
		}
		full := explore.Explore(prog, explore.Options{MaxConfigs: 1 << 16})
		if full.Truncated {
			continue // size cap is the soak driver's skip path, not a bug
		}
		stub := explore.Explore(prog, explore.Options{Reduction: explore.Stubborn, MaxConfigs: 1 << 16})
		if got, want := stub.TerminalStoreSet(), full.TerminalStoreSet(); !equalStr(got, want) {
			t.Fatalf("seed %d: stubborn diverges from full\n%s", seed, src)
		}
	}
}

func equalStr(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
