package progen

import (
	"testing"

	"psa/internal/lang"
)

func TestMutateDeterministicAndParseable(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		src := GenerateSource(seed, SmallProfile())
		a, da, err := Mutate(src, seed*7)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, db, err := Mutate(src, seed*7)
		if err != nil {
			t.Fatalf("seed %d repeat: %v", seed, err)
		}
		if a != b || da != db {
			t.Fatalf("seed %d: Mutate not deterministic (%q vs %q)", seed, da, db)
		}
		if _, err := lang.Parse(a); err != nil {
			t.Fatalf("seed %d: mutated program does not parse: %v", seed, err)
		}
	}
}

func TestMutateChains(t *testing.T) {
	// Edits compose: each output is a valid input for the next edit.
	src := GenerateSource(3, SmallProfile())
	for i := int64(0); i < 10; i++ {
		out, desc, err := Mutate(src, 100+i)
		if err != nil {
			t.Fatalf("step %d (%s): %v", i, desc, err)
		}
		src = out
	}
}

func TestMutateCoversCatalogue(t *testing.T) {
	// Over many seeds the catalogue's classes all appear.
	src := `
var g = 0;
func helper(x) { g = x; }
func idle() { skip; }
func main() {
  var p = 1;
  cobegin { helper(p); } || { g = 2; } coend
}
`
	seen := map[byte]bool{}
	for seed := int64(0); seed < 300; seed++ {
		_, desc, err := Mutate(src, seed)
		if err != nil {
			t.Fatal(err)
		}
		seen[desc[0]] = true // rename/tweak/insert/append/add/delete
	}
	for _, want := range []string{"rename", "tweak", "insert", "append", "add", "delete"} {
		if !seen[want[0]] {
			t.Errorf("no %s edit over 300 seeds", want)
		}
	}
}
