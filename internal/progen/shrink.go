// Delta-debugging shrinker: minimize a failing program while preserving
// its failure.
package progen

import (
	"psa/internal/lang"
)

// DefaultShrinkBudget bounds the number of candidate programs one Shrink
// call may evaluate. Each candidate costs one predicate evaluation, which
// for soak divergences means re-running analyses — the budget keeps a
// pathological shrink from eating the soak run's time box.
const DefaultShrinkBudget = 4000

// Shrink minimizes src while fail keeps reporting the failure. It
// repeatedly applies the first structural simplification (drop a
// function, a global, a statement, a cobegin arm; unwrap a cobegin, an
// if, or a loop; replace an expression by a literal) that yields a valid
// program on which fail still returns true, until no simplification
// helps or the candidate budget (DefaultShrinkBudget when budget <= 0)
// is exhausted.
//
// Shrink is deterministic: the same (src, fail) pair always returns the
// same minimized source. fail must itself be deterministic, or the
// result is whatever the flaky predicate admitted.
//
// src must parse; it is returned unchanged otherwise. The result always
// parses and always still satisfies fail.
func Shrink(src string, fail func(*lang.Program) bool, budget int) string {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	prog, err := lang.Parse(src)
	if err != nil {
		return src
	}
	// Normalize through the printer so candidate comparison and the
	// final result are in canonical form.
	cur := lang.Format(prog)
	attempts := 0
	for {
		improved := false
		for k := 0; ; k++ {
			cand, ok := applyEdit(cur, k)
			if !ok {
				break // edit list exhausted for this iteration
			}
			if cand == "" || cand == cur {
				continue // edit was inapplicable
			}
			p, err := lang.Parse(cand)
			if err != nil {
				continue // edit broke a reference; skip
			}
			attempts++
			if attempts > budget {
				return cur
			}
			if fail(p) {
				cur = cand
				improved = true
				break // restart the edit enumeration on the smaller program
			}
		}
		if !improved {
			return cur
		}
	}
}

// applyEdit parses cur, applies the k-th edit of its deterministic edit
// enumeration, and returns the re-rendered source. ok=false means k is
// past the end of the edit list; an empty string means the edit was a
// no-op. Candidates may fail to re-resolve (e.g. a deleted declaration
// still referenced); the caller filters them by re-parsing.
func applyEdit(cur string, k int) (string, bool) {
	prog, err := lang.Parse(cur)
	if err != nil {
		return "", false
	}
	edits := collectEdits(prog)
	if k >= len(edits) {
		return "", false
	}
	edits[k]()
	return lang.Format(prog), true
}

// collectEdits enumerates the structural simplifications of prog, coarse
// to fine, in deterministic program order. Each closure mutates the
// freshly parsed AST in place; the caller renders and discards it.
func collectEdits(prog *lang.Program) []func() {
	var edits []func()

	// 1. Drop a whole function (main must stay).
	for i := range prog.Funcs {
		if prog.Funcs[i].Name == "main" {
			continue
		}
		i := i
		edits = append(edits, func() {
			prog.Funcs = append(prog.Funcs[:i:i], prog.Funcs[i+1:]...)
		})
	}
	// 2. Drop a global.
	for i := range prog.Globals {
		i := i
		edits = append(edits, func() {
			prog.Globals = append(prog.Globals[:i:i], prog.Globals[i+1:]...)
		})
	}

	// Statement-level edits, per block in traversal order.
	forEachBlock(prog, func(b *lang.Block) {
		for i := range b.Stmts {
			i := i
			b := b
			// 3. Delete one statement.
			edits = append(edits, func() {
				b.Stmts = append(b.Stmts[:i:i], b.Stmts[i+1:]...)
			})
			switch s := b.Stmts[i].(type) {
			case *lang.CobeginStmt:
				// 4. Drop one arm (two must remain).
				if len(s.Arms) > 2 {
					for a := range s.Arms {
						a := a
						edits = append(edits, func() {
							s.Arms = append(s.Arms[:a:a], s.Arms[a+1:]...)
						})
					}
				}
				// 5. Unparallelize: splice one arm's statements in place
				// of the whole cobegin.
				for a := range s.Arms {
					a := a
					edits = append(edits, func() {
						spliceStmts(b, i, s.Arms[a].Stmts)
					})
				}
			case *lang.IfStmt:
				// 6. Unwrap a conditional into one of its branches.
				edits = append(edits, func() { spliceStmts(b, i, s.Then.Stmts) })
				if s.Else != nil {
					edits = append(edits, func() { spliceStmts(b, i, s.Else.Stmts) })
				}
			case *lang.WhileStmt:
				// 7. Unroll a loop to a single body execution.
				edits = append(edits, func() { spliceStmts(b, i, s.Body.Stmts) })
			}
		}
	})

	// 8. Literalize expressions: any non-trivial initializer, assigned
	// value, or condition becomes a small literal.
	zero := &lang.IntLit{Value: 0}
	forEachBlock(prog, func(b *lang.Block) {
		for _, st := range b.Stmts {
			switch s := st.(type) {
			case *lang.VarStmt:
				if !isIntLit(s.Init) {
					s := s
					edits = append(edits, func() { s.Init = zero })
				}
			case *lang.AssignStmt:
				if !isIntLit(s.Value) {
					s := s
					edits = append(edits, func() { s.Value = zero })
				}
			case *lang.ReturnStmt:
				if s.Value != nil && !isIntLit(s.Value) {
					s := s
					edits = append(edits, func() { s.Value = zero })
				}
			case *lang.AssertStmt:
				if !isIntLit(s.Cond) {
					s := s
					edits = append(edits, func() { s.Cond = zero })
				}
			}
		}
	})

	return edits
}

// spliceStmts replaces b.Stmts[i] with the given statements.
func spliceStmts(b *lang.Block, i int, repl []lang.Stmt) {
	out := make([]lang.Stmt, 0, len(b.Stmts)-1+len(repl))
	out = append(out, b.Stmts[:i]...)
	out = append(out, repl...)
	out = append(out, b.Stmts[i+1:]...)
	b.Stmts = out
}

func isIntLit(e lang.Expr) bool {
	_, ok := e.(*lang.IntLit)
	return ok
}

// forEachBlock visits every block of the program in source order:
// function bodies, then nested arm/branch/loop blocks depth-first.
func forEachBlock(prog *lang.Program, fn func(*lang.Block)) {
	var walk func(b *lang.Block)
	walk = func(b *lang.Block) {
		if b == nil {
			return
		}
		fn(b)
		for _, s := range b.Stmts {
			switch s := s.(type) {
			case *lang.CobeginStmt:
				for _, arm := range s.Arms {
					walk(arm)
				}
			case *lang.IfStmt:
				walk(s.Then)
				walk(s.Else)
			case *lang.WhileStmt:
				walk(s.Body)
			}
		}
	}
	for _, f := range prog.Funcs {
		walk(f.Body)
	}
}
