package progen

import (
	"strings"
	"testing"

	"psa/internal/explore"
	"psa/internal/lang"
)

// plantedFailure is a noisy program whose only real content is a failing
// assert; everything else is droppable.
const plantedFailure = `
var g = 1;
var noise;
func helper(a1) {
  noise = a1 + 2;
  return noise;
}
func main() {
  var x = helper(3);
  noise = x * 2;
  cobegin {
    g = g + 1;
  } || {
    noise = noise - 1;
  } coend
  if g > 0 {
    skip;
  }
  assert 0;
  g = 5;
}
`

// reachesError is the soak soundness-style predicate: the program has an
// error terminal under full exploration.
func reachesError(p *lang.Program) bool {
	res := explore.Explore(p, explore.Options{MaxConfigs: 1 << 14})
	return !res.Truncated && len(res.Errors) > 0
}

func TestShrinkPlantedFailure(t *testing.T) {
	got := Shrink(plantedFailure, reachesError, 0)
	want := "func main() {\n  assert 0;\n}\n"
	if got != want {
		t.Fatalf("shrink did not reach the minimal form:\n--- got\n%s--- want\n%s", got, want)
	}
	// Deterministic: a second run returns the identical result.
	if again := Shrink(plantedFailure, reachesError, 0); again != got {
		t.Fatalf("shrink is not deterministic:\n--- first\n%s--- second\n%s", got, again)
	}
}

func TestShrinkPreservesFailure(t *testing.T) {
	got := Shrink(plantedFailure, reachesError, 0)
	p, err := lang.Parse(got)
	if err != nil {
		t.Fatalf("shrunk program does not parse: %v\n%s", err, got)
	}
	if !reachesError(p) {
		t.Fatalf("shrunk program no longer fails:\n%s", got)
	}
}

func TestShrinkBudget(t *testing.T) {
	// With a budget of 1 the shrinker may accept at most one edit; the
	// result must still parse and fail.
	got := Shrink(plantedFailure, reachesError, 1)
	p, err := lang.Parse(got)
	if err != nil {
		t.Fatalf("budget-limited shrink broke the program: %v\n%s", err, got)
	}
	if !reachesError(p) {
		t.Fatalf("budget-limited shrink no longer fails:\n%s", got)
	}
	if len(got) >= len(plantedFailure) {
		t.Log("budget 1 made no progress (acceptable, but unexpected)")
	}
}

func TestShrinkInvalidSource(t *testing.T) {
	src := "this does not parse"
	if got := Shrink(src, func(*lang.Program) bool { return true }, 0); got != src {
		t.Fatalf("invalid source must be returned unchanged, got %q", got)
	}
}

// Shrinking a generated failing program must converge to something small:
// the divergence-to-reproducer path of the soak harness.
func TestShrinkGeneratedProgram(t *testing.T) {
	// Find a generated program with an error terminal (failed assert or
	// dangling deref) and shrink it against that predicate.
	for seed := int64(0); seed < 300; seed++ {
		prog, src, err := Generate(seed, DefaultProfile())
		if err != nil {
			t.Fatal(err)
		}
		if !reachesError(prog) {
			continue
		}
		got := Shrink(src, reachesError, 0)
		if len(got) > len(src) {
			t.Fatalf("seed %d: shrink grew the program", seed)
		}
		p, err := lang.Parse(got)
		if err != nil {
			t.Fatalf("seed %d: shrunk program does not parse: %v\n%s", seed, err, got)
		}
		if !reachesError(p) {
			t.Fatalf("seed %d: shrunk program no longer fails:\n%s", seed, got)
		}
		if strings.Count(got, "\n") > strings.Count(src, "\n") {
			t.Fatalf("seed %d: shrunk program has more lines than input", seed)
		}
		return
	}
	t.Fatal("no generated program with an error terminal in 300 seeds")
}
