package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"psa/internal/absdom"
	"psa/internal/abssem"
	"psa/internal/explore"
	"psa/internal/lang"
	"psa/internal/sched"
	"psa/internal/workloads"
)

const smallProg = `
var g; var flag; var data; var out;
func main() {
  cobegin {
    s1: g = 1;
    data = 42;
    flag = 1;
  } || {
    s2: g = 2;
    loop: while flag == 0 { skip; }
    s3: out = data;
  } coend
}
`

// longProg explores ~45k states (~0.5s sequential): long enough that a
// request can demonstrably be cancelled or coalesced mid-run, short
// enough for a bounded test.
func longProg() string { return lang.Format(workloads.Philosophers(5)) }

func newSvc(t *testing.T, workers int, sc sched.Scheduler) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(Config{Workers: workers, Sched: sc})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func post(t *testing.T, url string, req Request) (int, Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func waitForServiceGoroutineBaseline(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), want)
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newSvc(t, 0, sched.Leveled)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	if code, out := post(t, ts.URL, Request{Program: smallProg}); code != http.StatusOK {
		t.Fatalf("analyze: status %d (%+v)", code, out)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var body metricsBody
	if err := json.NewDecoder(mresp.Body).Decode(&body); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	if body.Service.Runs != 1 || body.Service.Requests != 1 {
		t.Fatalf("metrics service stats: %+v, want 1 run / 1 request", body.Service)
	}
	if body.Counters["states_unique"] == 0 {
		t.Fatalf("metrics counters missing engine activity: %v", body.Counters)
	}
}

// The acceptance criterion: a completed service run is bit-identical to
// the direct engine summary for the same (program, options) at 0, 1,
// and 4 workers under both schedulers.
func TestResponsesBitIdenticalToDirectRuns(t *testing.T) {
	prog, err := lang.Parse(smallProg)
	if err != nil {
		t.Fatal(err)
	}
	wantExplore := explore.Explore(prog, explore.Options{Reduction: explore.Stubborn, Coarsen: true}).String()
	wantAbstract := abssem.Analyze(prog, abssem.Options{Domain: absdom.SignDomain{}}).String()

	for _, workers := range []int{0, 1, 4} {
		for _, sc := range []sched.Scheduler{sched.Leveled, sched.DepDriven} {
			_, ts := newSvc(t, workers, sc)
			code, out := post(t, ts.URL, Request{
				Program: smallProg,
				Options: Options{Reduction: "stubborn", Coarsen: true},
			})
			if code != http.StatusOK {
				t.Fatalf("workers=%d sched=%s: status %d (%+v)", workers, sc, code, out)
			}
			if out.Summary != wantExplore {
				t.Errorf("workers=%d sched=%s: explore summary %q != direct %q", workers, sc, out.Summary, wantExplore)
			}
			code, out = post(t, ts.URL, Request{
				Program:  smallProg,
				Analysis: "abstract",
				Options:  Options{Domain: "sign"},
			})
			if code != http.StatusOK {
				t.Fatalf("workers=%d sched=%s: abstract status %d (%+v)", workers, sc, code, out)
			}
			if out.Summary != wantAbstract {
				t.Errorf("workers=%d sched=%s: abstract summary %q != direct %q", workers, sc, out.Summary, wantAbstract)
			}
		}
	}
}

func TestResultCache(t *testing.T) {
	svc, ts := newSvc(t, 0, sched.Leveled)
	req := Request{Program: smallProg, Options: Options{Outcomes: true}}
	_, first := post(t, ts.URL, req)
	if first.Cached {
		t.Fatal("first request reported Cached")
	}
	_, second := post(t, ts.URL, req)
	if !second.Cached {
		t.Fatal("identical second request missed the result cache")
	}
	if second.Summary != first.Summary || len(second.Outcomes) != len(first.Outcomes) {
		t.Fatalf("cached response diverged: %+v vs %+v", second, first)
	}
	// A different result-relevant option is a different key.
	_, third := post(t, ts.URL, Request{Program: smallProg, Options: Options{Reduction: "stubborn", Outcomes: true}})
	if third.Cached {
		t.Fatal("request under different options hit the cache")
	}
	st := svc.Stats()
	if st.Runs != 2 || st.CacheHits != 1 {
		t.Fatalf("stats after cache exercise: %+v, want 2 runs / 1 cache hit", st)
	}
}

func TestResultCacheEviction(t *testing.T) {
	svc := New(Config{CacheMax: 1})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	second := `var g; func main() { g = 1; }`

	post(t, ts.URL, Request{Program: smallProg})
	post(t, ts.URL, Request{Program: second}) // bound 1: evicts smallProg
	if _, out := post(t, ts.URL, Request{Program: smallProg}); out.Cached {
		t.Fatal("evicted result was served from the cache")
	}
	st := svc.Stats()
	if st.CacheEvictions < 2 {
		t.Fatalf("stats: %+v, want >=2 evictions at CacheMax=1", st)
	}
	if st.CacheHits != 0 {
		t.Fatalf("stats: %+v, want 0 cache hits", st)
	}
}

// Program versions for the incremental (base-hash) request flow: v2
// α-renames a parameter of v1, v3 edits bump's body, v4 α-renames v3.
const (
	svcIncV1 = `
var g; var h;
func bump(x) { g = g + x; }
func poke() { h = h + 1; }
func main() {
  cobegin { bump(1); } || { poke(); } coend
  g = g + h;
}
`
	svcIncV2 = `
var g; var h;
func bump(y) { g = g + y; }
func poke() { h = h + 1; }
func main() {
  cobegin { bump(1); } || { poke(); } coend
  g = g + h;
}
`
	svcIncV3 = `
var g; var h;
func bump(y) { g = g + y + 1; }
func poke() { h = h + 1; }
func main() {
  cobegin { bump(1); } || { poke(); } coend
  g = g + h;
}
`
	svcIncV4 = `
var g; var h;
func bump(z) { g = g + z + 1; }
func poke() { h = h + 1; }
func main() {
  cobegin { bump(1); } || { poke(); } coend
  g = g + h;
}
`
)

// An abstract request carrying the previous version's program_hash runs
// through the incremental session: responses stay bit-identical to
// direct scratch runs while the summary counters in /metrics show the
// reuse (hits on untouched procedures, invalidations on edited ones,
// whole-result reuse on α-neutral resubmissions).
func TestIncrementalBaseRequests(t *testing.T) {
	svc, ts := newSvc(t, 0, sched.Leveled)

	scratch := func(src string) string {
		return abssem.Analyze(lang.MustParse(src), abssem.Options{}).String()
	}
	counters := func() map[string]int64 {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body metricsBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Counters
	}

	_, v1 := post(t, ts.URL, Request{Program: svcIncV1, Analysis: "abstract"})
	if v1.ProgramHash == "" {
		t.Fatalf("abstract response carries no program hash: %+v", v1)
	}
	if v1.Incremental {
		t.Fatal("base-less request flagged incremental")
	}

	// v2 (α-rename) opens the session; its run is the session's baseline.
	_, v2 := post(t, ts.URL, Request{Program: svcIncV2, Analysis: "abstract", Base: v1.ProgramHash})
	if !v2.Incremental {
		t.Fatalf("based request not routed through the incremental session: %+v", v2)
	}
	if v2.Summary != scratch(svcIncV2) {
		t.Fatalf("incremental v2 summary diverged from scratch:\n%s\nvs\n%s", v2.Summary, scratch(svcIncV2))
	}

	// v3 edits bump only: the session re-runs warm, hitting summaries for
	// everything the edit left alone and dropping the stale ones.
	_, v3 := post(t, ts.URL, Request{Program: svcIncV3, Analysis: "abstract", Base: v2.ProgramHash})
	if v3.Summary != scratch(svcIncV3) {
		t.Fatalf("incremental v3 summary diverged from scratch")
	}
	c := counters()
	if c["summary_hit"] == 0 {
		t.Fatalf("edited re-analysis had no summary hits: %v", c)
	}
	if c["summary_invalidated"] == 0 {
		t.Fatalf("editing bump invalidated no summaries: %v", c)
	}

	// v4 α-renames v3: same program hash, so the whole previous result is
	// reused without re-running the fixpoint.
	_, v4 := post(t, ts.URL, Request{Program: svcIncV4, Analysis: "abstract", Base: v3.ProgramHash})
	if v4.Summary != scratch(svcIncV4) {
		t.Fatalf("incremental v4 summary diverged from scratch")
	}
	if c := counters(); c["analysis_cache_hit"] == 0 {
		t.Fatalf("α-neutral resubmission did not take the whole-program fast path: %v", c)
	}

	st := svc.Stats()
	if st.IncrementalRuns != 3 {
		t.Fatalf("stats: %+v, want 3 incremental runs", st)
	}
}

// N identical concurrent requests share one engine run: every response
// carries the same summary, and the service performed exactly one run —
// the followers either attached to the in-flight run (coalesce hits) or,
// if they lost the race with completion, hit the result cache.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	svc, ts := newSvc(t, 2, sched.Leveled)
	prog := longProg()
	req := Request{Program: prog}

	leaderDone := make(chan Response, 1)
	go func() {
		_, out := post(t, ts.URL, req)
		leaderDone <- out
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader request never became in-flight")
		}
		time.Sleep(100 * time.Microsecond)
	}

	const followers = 4
	outs := make([]Response, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outs[i] = post(t, ts.URL, req)
		}(i)
	}
	wg.Wait()
	leader := <-leaderDone

	for i, out := range outs {
		if out.Summary != leader.Summary {
			t.Errorf("follower %d summary %q != leader %q", i, out.Summary, leader.Summary)
		}
	}
	st := svc.Stats()
	if st.Runs != 1 {
		t.Fatalf("5 identical requests caused %d engine runs, want exactly 1 (stats %+v)", st.Runs, st)
	}
	if st.CoalesceHits+st.CacheHits != followers {
		t.Fatalf("followers unaccounted for: %+v, want coalesce+cache = %d", st, followers)
	}
}

// A client disconnecting mid-run cancels the run within a bounded
// deadline once no other request is attached, with no goroutine leak.
func TestClientDisconnectCancelsRun(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())

	body, _ := json.Marshal(Request{Program: longProg()})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/analyze", bytes.NewReader(body))
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(100 * time.Microsecond)
	}

	cancel() // client walks away
	if err := <-errc; err == nil {
		t.Fatal("expected the client request to fail after cancellation")
	}
	// Bounded-deadline cancellation: the run must observe the cancel at
	// its next merge boundary and retire, well inside the full runtime.
	deadline = time.Now().Add(3 * time.Second)
	for {
		st := svc.Stats()
		if st.Inflight == 0 && st.RunsCancelled == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run not cancelled within deadline: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	ts.Close()
	svc.Close()
	waitForServiceGoroutineBaseline(t, before)
}

// Close cancels in-flight runs; attached clients get a coherent partial
// result flagged cancelled, and everything drains without leaking.
func TestCloseCancelsInflightRuns(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())

	type reply struct {
		code int
		out  Response
	}
	done := make(chan reply, 1)
	go func() {
		body, _ := json.Marshal(Request{Program: longProg()})
		resp, err := http.Post(ts.URL+"/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- reply{code: -1}
			return
		}
		defer resp.Body.Close()
		var out Response
		_ = json.NewDecoder(resp.Body).Decode(&out)
		done <- reply{code: resp.StatusCode, out: out}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(100 * time.Microsecond)
	}

	svc.Close()
	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request during Close: status %d (%+v)", r.code, r.out)
	}
	if !r.out.Cancelled {
		t.Fatalf("in-flight request during Close returned uncancelled result: %+v", r.out)
	}
	if r.out.States < 1 {
		t.Fatalf("cancelled result lost its coherent prefix: %+v", r.out)
	}

	// After Close, new submissions are refused.
	if code, _ := post(t, ts.URL, Request{Program: smallProg}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-Close request: status %d, want 503", code)
	}

	ts.Close()
	waitForServiceGoroutineBaseline(t, before)
}

func TestBadRequests(t *testing.T) {
	_, ts := newSvc(t, 0, sched.Leveled)
	for name, tc := range map[string]struct {
		method string
		body   string
		want   int
	}{
		"not-json":         {http.MethodPost, "{", http.StatusBadRequest},
		"unknown-analysis": {http.MethodPost, `{"program":"var g;","analysis":"quantum"}`, http.StatusBadRequest},
		"unknown-red":      {http.MethodPost, `{"program":"var g;","options":{"reduction":"fast"}}`, http.StatusBadRequest},
		"unknown-domain":   {http.MethodPost, `{"program":"var g;","analysis":"abstract","options":{"domain":"octagon"}}`, http.StatusBadRequest},
		"parse-error":      {http.MethodPost, `{"program":"not a program"}`, http.StatusBadRequest},
		"get-not-allowed":  {http.MethodGet, "", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+"/analyze", strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.want)
		}
	}

	svcBig, tsBig := newSvc(t, 0, sched.Leveled)
	_ = svcBig
	huge := `{"program":"` + strings.Repeat("x", 2<<20) + `"}`
	resp, err := http.Post(tsBig.URL+"/analyze", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}
