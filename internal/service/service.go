// Package service is the analysis-as-a-service layer behind cmd/psad:
// an http.Handler that accepts cobegin programs plus run options as
// JSON, executes them through one process-wide worker pool, and serves
// the results the engines' determinism contract makes cacheable.
//
// Three properties organize the design:
//
//   - One pool, many runs. Every analysis executes on the service's
//     shared sched.Pool; concurrent submissions interleave on the same
//     persistent workers instead of spawning goroutines per request.
//     Workers and scheduler choice are server-side, execution-only
//     configuration — by the engines' determinism contract they never
//     change results, so they are not part of a request.
//
//   - Coalescing and caching by result identity. Two requests with the
//     same program hash and the same result-relevant options must
//     produce bit-identical results, so an in-flight run is shared by
//     every identical request that arrives before it completes (one
//     engine run, N responses), and completed results are cached by the
//     same key. A request detaching (client disconnect) decrements the
//     flight's reference count; when the last requester detaches, the
//     run's context is cancelled and the work stops at the engine's
//     next merge boundary.
//
//   - Cancellation is truncation. A cancelled run returns the engines'
//     coherent partial result (Cancelled set, same cut shape as the
//     MaxConfigs/MaxStates truncation). Because the cut point is
//     timing-dependent, cancelled results never enter the cache.
//
//   - Edits reuse summaries. An abstract request carrying a `base`
//     program hash (the ProgramHash of a previously analyzed version)
//     runs through a per-options incremental session
//     (pipeline.Incremental): unchanged procedures are served from the
//     session's summary store, and an α-equivalent resubmission skips
//     the fixpoint entirely. The incremental layer's bit-identity
//     contract means the response — summary text and engine counters
//     alike — is indistinguishable from a cold run's, so the
//     coalescing/cache key ignores base.
//
// The completed-result cache is bounded (Config.CacheMax) with
// least-recently-used eviction; evictions are counted in Stats.
package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"psa/internal/absdom"
	"psa/internal/abssem"
	"psa/internal/explore"
	"psa/internal/lang"
	"psa/internal/metrics"
	"psa/internal/pipeline"
	"psa/internal/sched"
)

// Request is one analysis submission.
type Request struct {
	// Program is the cobegin source text to analyze.
	Program string `json:"program"`
	// Analysis selects the engine: "explore" (the concrete explorer,
	// the default) or "abstract" (the abstract fixpoint engine).
	Analysis string `json:"analysis,omitempty"`
	// Options are the result-relevant run options. Execution-only
	// configuration (workers, scheduler) is server-side.
	Options Options `json:"options,omitempty"`
	// Base is the ProgramHash of a previously analyzed version this
	// program is an edit of. Setting it routes an abstract run through
	// the service's incremental session for these options, reusing the
	// procedure summaries that survive the edit (and the whole previous
	// result when the edit is α-neutral). Purely an optimization hint:
	// the response is bit-identical with or without it, and a stale or
	// unknown hash merely warms up from whatever the session still
	// holds. Ignored for explore runs.
	Base string `json:"base,omitempty"`
}

// Options is the result-relevant subset of pipeline.RunOptions plus the
// abstract engine's domain knobs — exactly the fields that can change
// what a run computes. Zero values select the engines' defaults.
type Options struct {
	// Reduction selects concrete expansion: "full" (default) or
	// "stubborn".
	Reduction string `json:"reduction,omitempty"`
	// Coarsen enables virtual coarsening of non-critical runs.
	Coarsen bool `json:"coarsen,omitempty"`
	// MaxConfigs caps distinct configurations (explore) or abstract
	// states (abstract); 0 selects the engine default.
	MaxConfigs int `json:"max_configs,omitempty"`
	// ExactKeys stores full canonical keys in the concrete visited set.
	ExactKeys bool `json:"exact_keys,omitempty"`
	// Domain selects the abstract domain: "const" (default), "sign", or
	// "interval". Abstract runs only.
	Domain string `json:"domain,omitempty"`
	// ClanFold folds identical cobegin arms during abstract
	// interpretation.
	ClanFold bool `json:"clan_fold,omitempty"`
	// Outcomes includes the canonical terminal-outcome set in explore
	// responses (explore.Result.TerminalStoreSet).
	Outcomes bool `json:"outcomes,omitempty"`
}

// Response is one analysis result. Summary is the engine Result's
// String() rendering — bit-identical to what cmd/psa prints for the
// same program and options at any worker count.
type Response struct {
	Analysis  string `json:"analysis"`
	Summary   string `json:"summary"`
	States    int    `json:"states"`
	Edges     int    `json:"edges,omitempty"`
	Visits    int    `json:"visits,omitempty"`
	Terminals int    `json:"terminals"`
	Errors    int    `json:"errors,omitempty"`
	MayError  bool   `json:"may_error,omitempty"`
	Truncated bool   `json:"truncated,omitempty"`
	// Cancelled marks a partial result: the run's context was cancelled
	// (service shutdown) before completion. The artifacts cover the
	// explored prefix coherently but the cut is timing-dependent, so
	// the result was not cached.
	Cancelled bool     `json:"cancelled,omitempty"`
	Outcomes  []string `json:"outcomes,omitempty"`
	// ProgramHash identifies the analyzed program version under the
	// options' hash mode (the named body hash under clan folding, the
	// α-renamed one otherwise); pass it back as Request.Base when
	// submitting an edit of this program.
	ProgramHash string `json:"program_hash,omitempty"`
	// Incremental marks an abstract run that went through the service's
	// incremental session (Request.Base was set), so its expansions
	// could hit the session's summary store.
	Incremental bool `json:"incremental,omitempty"`
	// Coalesced marks a response served by attaching to another
	// request's in-flight run; Cached one served from the completed-
	// result cache. Per-request bookkeeping, not part of the result.
	Coalesced bool   `json:"coalesced,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Stats is a snapshot of the service's request bookkeeping, exposed for
// tests and the /metrics endpoint.
type Stats struct {
	Requests      int64 `json:"requests"`
	Runs          int64 `json:"runs"`
	RunsCancelled int64 `json:"runs_cancelled"`
	CoalesceHits  int64 `json:"coalesce_hits"`
	CacheHits     int64 `json:"cache_hits"`
	// CacheEvictions counts completed results dropped from the bounded
	// result cache (least recently used first, see Config.CacheMax).
	CacheEvictions int64 `json:"cache_evictions"`
	// IncrementalRuns counts abstract runs routed through an incremental
	// session because the request carried a base program hash.
	IncrementalRuns int64 `json:"incremental_runs"`
	Inflight        int   `json:"inflight"`
}

// Config configures a Service.
type Config struct {
	// Workers sizes the shared pool both engines run on (0/1
	// sequential, negative GOMAXPROCS).
	Workers int
	// Sched selects the parallel scheduler for every run.
	Sched sched.Scheduler
	// MaxBody caps the request body in bytes (default 1 MiB).
	MaxBody int64
	// CacheMax bounds the completed-result cache: at most CacheMax
	// results are retained, evicting the least recently used (0 selects
	// the default of 1024; negative disables the bound).
	CacheMax int
}

// Service executes analysis requests on one shared pool with in-flight
// coalescing and an options-keyed result cache. Create with New, serve
// via Handler, release with Close.
type Service struct {
	cfg  Config
	pool *sched.Pool

	// base is the parent of every run context; Close cancels it so
	// in-flight runs stop at their next merge boundary.
	base   context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	flights map[string]*flight
	// Completed-result cache: map into an LRU list whose front is the
	// most recently used entry; inserts past cfg.CacheMax evict the back.
	cache    map[string]*list.Element
	lru      *list.List // of *cacheEntry
	incs     map[string]*incSession
	incOrder []string // incremental sessions, least recently used first
	stats    Stats
	counters map[string]int64 // engine counters aggregated across runs
	closed   bool
}

// cacheEntry is one completed result in the LRU list.
type cacheEntry struct {
	key string
	out *outcome
}

// incSession is one per-options incremental analysis session. The inner
// pipeline.Incremental serializes its own calls, so concurrent flights
// over the same options share it safely.
type incSession struct {
	inc *pipeline.Incremental
}

// maxIncSessions bounds the distinct options keys with live incremental
// sessions; the least recently used session (and its summary store) is
// dropped past the bound.
const maxIncSessions = 8

// flight is one in-flight engine run shared by every coalesced request.
type flight struct {
	done   chan struct{} // closed when out is set
	out    *outcome
	refs   int // attached requests; last detach cancels the run
	cancel context.CancelFunc
}

// outcome is a completed run: the shared response body (before
// per-request Coalesced/Cached flags) and its HTTP status.
type outcome struct {
	resp   Response
	status int
}

// New builds a Service with its own worker pool.
func New(cfg Config) *Service {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.CacheMax == 0 {
		cfg.CacheMax = 1024
	}
	base, cancel := context.WithCancel(context.Background())
	return &Service{
		cfg:      cfg,
		pool:     sched.ForWorkers(cfg.Workers),
		base:     base,
		cancel:   cancel,
		flights:  map[string]*flight{},
		cache:    map[string]*list.Element{},
		lru:      list.New(),
		incs:     map[string]*incSession{},
		counters: map[string]int64{},
	}
}

// Close cancels every in-flight run and releases the worker pool. Runs
// observe the cancellation at their next merge boundary, return partial
// results to any still-attached clients, and drain before the pool
// closes. Safe to call more than once.
func (s *Service) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	inflight := make([]*flight, 0, len(s.flights))
	for _, f := range s.flights {
		inflight = append(inflight, f)
	}
	s.mu.Unlock()
	if already {
		return
	}
	s.cancel()
	for _, f := range inflight {
		<-f.done
	}
	s.pool.Close()
}

// Stats returns a snapshot of the request bookkeeping.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Inflight = len(s.flights)
	return st
}

// Handler returns the service's HTTP routes:
//
//	POST /analyze  submit a Request, receive a Response
//	GET  /healthz  liveness probe
//	GET  /metrics  service stats + aggregated engine counters (JSON)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// metricsBody is the /metrics JSON shape: request bookkeeping plus the
// engine counters aggregated across every completed run (each run has
// its own metrics.Registry — the per-level stats are single-run state —
// and its counter snapshot folds in here on completion).
type metricsBody struct {
	Service  Stats            `json:"service"`
	Counters map[string]int64 `json:"counters"`
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	body := metricsBody{Service: s.stats, Counters: make(map[string]int64, len(s.counters))}
	body.Service.Inflight = len(s.flights)
	for k, v := range s.counters {
		body.Counters[k] = v
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

func (s *Service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, Response{Error: "POST only"})
		return
	}
	var req Request
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: "read body: " + err.Error()})
		return
	}
	if int64(len(body)) > s.cfg.MaxBody {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			Response{Error: fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBody)})
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: "decode request: " + err.Error()})
		return
	}
	key, err := requestKey(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
		return
	}

	s.mu.Lock()
	s.stats.Requests++
	if s.closed {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, Response{Error: "service shutting down"})
		return
	}
	if elem, ok := s.cache[key]; ok {
		s.stats.CacheHits++
		s.lru.MoveToFront(elem)
		out := elem.Value.(*cacheEntry).out
		s.mu.Unlock()
		resp := out.resp
		resp.Cached = true
		writeJSON(w, out.status, resp)
		return
	}
	f, coalesced := s.flights[key]
	if coalesced {
		s.stats.CoalesceHits++
		f.refs++
	} else {
		ctx, cancel := context.WithCancel(s.base)
		f = &flight{done: make(chan struct{}), cancel: cancel, refs: 1}
		s.flights[key] = f
		s.stats.Runs++
		go s.run(ctx, key, f, req)
	}
	s.mu.Unlock()

	select {
	case <-f.done:
	case <-r.Context().Done():
		// Client gone. Detach; the last detaching requester cancels the
		// run, which then stops at the engine's next merge boundary.
		s.mu.Lock()
		f.refs--
		last := f.refs == 0
		s.mu.Unlock()
		if last {
			f.cancel()
		}
		return
	}
	resp := f.out.resp
	resp.Coalesced = coalesced
	writeJSON(w, f.out.status, resp)
}

// requestKey is the coalescing/cache key: program content hash plus
// every result-relevant option — precisely the identity under which the
// engines guarantee bit-identical results. Request.Base is deliberately
// excluded: the incremental path is bit-identical to the cold one, so
// base cannot change what a request computes.
func requestKey(req *Request) (string, error) {
	switch req.Analysis {
	case "", "explore":
		req.Analysis = "explore"
	case "abstract":
	default:
		return "", fmt.Errorf("unknown analysis %q (explore|abstract)", req.Analysis)
	}
	if _, ok := parseReduction(req.Options.Reduction); !ok {
		return "", fmt.Errorf("unknown reduction %q (full|stubborn)", req.Options.Reduction)
	}
	if req.Analysis == "abstract" && req.Options.Domain != "" && absdom.DomainByName(req.Options.Domain) == nil {
		return "", fmt.Errorf("unknown domain %q (const|sign|interval)", req.Options.Domain)
	}
	h := sha256.Sum256([]byte(req.Program))
	return fmt.Sprintf("%x|%s", h, optionsKey(req)), nil
}

// optionsKey is the program-independent part of requestKey — also the
// identity under which incremental sessions are shared (two requests
// with the same optionsKey may reuse each other's procedure summaries).
func optionsKey(req *Request) string {
	o := req.Options
	return fmt.Sprintf("%s|red=%s coarsen=%t max=%d exact=%t dom=%s clan=%t outcomes=%t",
		req.Analysis, o.Reduction, o.Coarsen, o.MaxConfigs, o.ExactKeys, o.Domain, o.ClanFold, o.Outcomes)
}

func parseReduction(s string) (explore.Reduction, bool) {
	switch s {
	case "", "full":
		return explore.Full, true
	case "stubborn":
		return explore.Stubborn, true
	}
	return 0, false
}

// run executes one coalesced flight: the engine run itself, then under
// the lock the flight retires, cacheable results (completed, never
// cancelled — a cancelled cut is timing-dependent) enter the cache, and
// the per-run engine counters fold into the service aggregate.
func (s *Service) run(ctx context.Context, key string, f *flight, req Request) {
	out, reg := s.execute(ctx, &req)
	s.mu.Lock()
	f.out = out
	delete(s.flights, key)
	if out.resp.Cancelled {
		s.stats.RunsCancelled++
	} else if out.status == http.StatusOK {
		s.cache[key] = s.lru.PushFront(&cacheEntry{key: key, out: out})
		for s.cfg.CacheMax > 0 && s.lru.Len() > s.cfg.CacheMax {
			oldest := s.lru.Back()
			s.lru.Remove(oldest)
			delete(s.cache, oldest.Value.(*cacheEntry).key)
			s.stats.CacheEvictions++
		}
	}
	if reg != nil {
		for name, v := range reg.Snapshot().Counters {
			s.counters[name] += v
		}
	}
	s.mu.Unlock()
	f.cancel() // release the context; harmless after completion
	close(f.done)
}

// incremental returns the live incremental session for an options key,
// creating it (and evicting the least recently used session past
// maxIncSessions) as needed. Returns nil when the service is closed —
// the caller then falls back to a one-shot run, which the closed base
// context cancels the usual way.
func (s *Service) incremental(key string, adjust func(*abssem.Options)) *pipeline.Incremental {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.stats.IncrementalRuns++
	if ses, ok := s.incs[key]; ok {
		for i, k := range s.incOrder {
			if k == key {
				s.incOrder = append(append(s.incOrder[:i:i], s.incOrder[i+1:]...), key)
				break
			}
		}
		return ses.inc
	}
	if len(s.incs) >= maxIncSessions {
		oldest := s.incOrder[0]
		s.incOrder = s.incOrder[1:]
		delete(s.incs, oldest)
	}
	ses := &incSession{inc: pipeline.NewIncremental(pipeline.RunOptions{}, adjust)}
	s.incs[key] = ses
	s.incOrder = append(s.incOrder, key)
	return ses.inc
}

// execute runs the request's engine under ctx on the shared pool, with
// a private metrics registry (level bookkeeping is single-run state).
func (s *Service) execute(ctx context.Context, req *Request) (*outcome, *metrics.Registry) {
	prog, err := lang.Parse(req.Program)
	if err != nil {
		return &outcome{
			resp:   Response{Analysis: req.Analysis, Error: err.Error()},
			status: http.StatusBadRequest,
		}, nil
	}
	red, _ := parseReduction(req.Options.Reduction)
	reg := metrics.New()
	ro := pipeline.RunOptions{
		Reduction:  red,
		Coarsen:    req.Options.Coarsen,
		Workers:    s.cfg.Workers,
		Sched:      s.cfg.Sched,
		Pool:       s.pool,
		MaxConfigs: req.Options.MaxConfigs,
		ExactKeys:  req.Options.ExactKeys,
		Metrics:    reg,
	}

	if req.Analysis == "abstract" {
		adjust := func(ao *abssem.Options) {
			if req.Options.Domain != "" {
				ao.Domain = absdom.DomainByName(req.Options.Domain)
			}
			ao.ClanFold = req.Options.ClanFold
		}
		// The hash mode must match the incremental layer's: clan folding
		// reads local names, so only the named hash identifies "same
		// analysis input" under it.
		hash := lang.HashProgram(prog).ProgramHash(req.Options.ClanFold)
		var res *abssem.Result
		incremental := false
		if req.Base != "" {
			if inc := s.incremental(optionsKey(req), adjust); inc != nil {
				res = inc.Configure(ro).AnalyzeEditContext(ctx, prog)
				incremental = true
			}
		}
		if res == nil {
			res = pipeline.AnalyzeContext(ctx, prog, ro, adjust)
		}
		return &outcome{
			resp: Response{
				Analysis:    "abstract",
				Summary:     res.String(),
				States:      res.States,
				Visits:      res.Visits,
				Terminals:   res.TerminalCount,
				MayError:    res.MayError,
				Truncated:   res.Truncated,
				Cancelled:   res.Cancelled,
				ProgramHash: hash,
				Incremental: incremental,
			},
			status: http.StatusOK,
		}, reg
	}

	res := pipeline.ExploreContext(ctx, prog, ro)
	resp := Response{
		Analysis:    "explore",
		Summary:     res.String(),
		States:      res.States,
		Edges:       res.Edges,
		Terminals:   len(res.Terminals),
		Errors:      len(res.Errors),
		Truncated:   res.Truncated,
		Cancelled:   res.Cancelled,
		ProgramHash: lang.HashProgram(prog).ProgramHash(false),
	}
	if req.Options.Outcomes {
		resp.Outcomes = res.TerminalStoreSet()
	}
	return &outcome{resp: resp, status: http.StatusOK}, reg
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}
