// Parallelizer: the compiler-writer scenario from the paper's §7
// (Example 15 / Figure 8). A numerical pipeline makes four procedure
// calls in sequence; the analysis computes their transitive footprints,
// finds the dependences, proposes the finest parallel schedule, and
// verifies the Shasha–Snir delay condition for the chosen segmentation.
//
// Run with: go run ./examples/parallelizer
package main

import (
	"fmt"
	"log"

	"psa/internal/core"
)

const pipeline = `
// A small stencil pipeline over two heap-allocated rows: the writes and
// reads cross between phases exactly like the paper's f1..f4.
var rowA;
var rowB;
var checksumA;
var checksumB;

func initA() {
  var i = 0;
  while i < 4 {
    *(rowA + i) = i * 10;
    i = i + 1;
  }
  return 0;
}

func sumB() {
  var i = 0;
  var acc = 0;
  while i < 4 {
    acc = acc + *(rowB + i);
    i = i + 1;
  }
  return acc;
}

func initB() {
  var i = 0;
  while i < 4 {
    *(rowB + i) = i + 100;
    i = i + 1;
  }
  return 0;
}

func sumA() {
  var i = 0;
  var acc = 0;
  while i < 4 {
    acc = acc + *(rowA + i);
    i = i + 1;
  }
  return acc;
}

func main() {
  rowA = malloc(4);
  rowB = malloc(4);
  initB();
  s1: initA();
  s2: checksumB = sumB();
  s3: initB();
  s4: checksumA = sumA();
}
`

func main() {
	a, err := core.Parse(pipeline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== dependences among the four calls ==")
	for _, d := range a.Dependences("s1", "s2", "s3", "s4") {
		fmt.Printf("  %s\n", d)
	}

	fmt.Println("\n== finest schedule ==")
	sched := a.Parallelize("s1", "s2", "s3", "s4")
	fmt.Printf("  %s\n", sched)

	fmt.Println("\n== delay plan for the paper's segmentation {s1;s2} || {s3;s4} ==")
	plan := a.PlanDelays([][]string{{"s1", "s2"}, {"s3", "s4"}})
	fmt.Println(indent(plan.String()))

	fmt.Println("\n== an illegal segmentation (reorders a dependent pair) ==")
	bad := a.PlanDelays([][]string{{"s2", "s3"}, {"s4", "s1"}})
	fmt.Println(indent(bad.String()))
	if bad.Acyclic {
		fmt.Println("  unexpected: the planner accepted it")
	} else {
		fmt.Println("  rejected, as it must be: P ∪ E has a cycle")
	}

	fmt.Println("\n== SS88 enforcement on the parallelized form ==")
	enforce := a.MinimalDelays([][]string{{"s1", "s2"}, {"s3", "s4"}})
	fmt.Println(indent(enforce.String()))

	fmt.Println("\n== applying the schedule (program restructuring) ==")
	transformed, err := a.Restructure(sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(indent(transformed.Format()))
	eq := a.VerifyAgainst(transformed)
	fmt.Printf("\n  outcome sets equal after restructuring: %v (%d outcomes)\n",
		eq.Equal, len(eq.OriginalOutcomes))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
