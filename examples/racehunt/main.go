// Racehunt: the debugging scenario surveyed in [MH89]. A producer/
// consumer pair has a protocol bug — the consumer samples the data slot
// without waiting for the flag in one code path. Exhaustive exploration
// finds the access anomaly, shows an assertion that can fail, and the
// optimization oracle demonstrates why a compiler must not touch the
// flag loop.
//
// Run with: go run ./examples/racehunt
package main

import (
	"fmt"
	"log"

	"psa/internal/core"
	"psa/internal/lang"
)

const buggy = `
var flag;
var slot;
var fast;
var careful;

func main() {
  cobegin {
    p1: slot = 41;
    p2: flag = 1;
  } || {
    // BUG: reads the slot before checking the flag.
    c1: fast = slot;
    c2: while flag == 0 { skip; }
    c3: careful = slot;
  } coend
  final: assert careful == 41;
}
`

func main() {
	a, err := core.Parse(buggy)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== reachable outcomes of (fast, careful) ==")
	res := a.Explore(core.ExploreOptions{Reduction: core.Full})
	for _, o := range res.OutcomeSet("fast", "careful") {
		note := ""
		if o[0] == 0 {
			note = "   <- the unsynchronized read saw the un-published slot"
		}
		fmt.Printf("  fast=%d careful=%d%s\n", o[0], o[1], note)
	}

	fmt.Println("\n== access anomalies ==")
	for _, an := range a.Anomalies() {
		kind := "read/write"
		if an.WriteWrite {
			kind = "write/write"
		}
		fmt.Printf("  %s between %s and %s on %s\n",
			kind, label(a.Prog, an.StmtA), label(a.Prog, an.StmtB), an.Loc)
	}

	fmt.Println("\n== can the compiler 'optimize' the flag loop? ==")
	fmt.Printf("  hoist flag load out of c2:  %s\n", a.NewOracle().HoistLoad("c2", "flag"))
	fmt.Printf("  const-prop flag at c2:      %s\n", a.NewOracle().ConstProp("c2", "flag"))

	fmt.Println("\n== does the final assertion always hold? ==")
	if len(res.Errors) == 0 {
		fmt.Println("  yes: careful is read only after the flag handoff")
	} else {
		fmt.Printf("  no: %d error state(s), e.g. %s\n", len(res.Errors), res.Errors[0].Err)
	}
}

func label(p *core.Program, id lang.NodeID) string {
	if n := p.Node(id); n != nil {
		if s, ok := n.(lang.Stmt); ok {
			return lang.DescribeStmt(s)
		}
	}
	return fmt.Sprint(id)
}
