// Memplanner: the memory-management scenario of the paper's §5.3/§7.
// A fork/join kernel allocates several buffers; the lifetime analysis
// decides, per allocation site, whether the object can live in
// processor-local memory (or even on the creator's stack) or must be
// placed at a memory level visible to several processors.
//
// Run with: go run ./examples/memplanner
package main

import (
	"fmt"
	"log"

	"psa/internal/core"
)

const kernel = `
var result;

// scratch returns a privately-used temporary's final value: its buffer
// never escapes the activation and is stack-allocatable.
func scratch(seed) {
  t1: var tmp = malloc(2);
  *tmp = seed;
  *(tmp + 1) = seed * 2;
  var out = *tmp + *(tmp + 1);
  return out;
}

func main() {
  // shared is written by one worker and read by the other: it needs a
  // level visible to both processors.
  b1: var shared = malloc(1);
  // private is only ever touched by the second worker: local placement.
  b2: var private = malloc(1);
  // handoff outlives main's cobegin and is read afterwards.
  b3: var handoff = malloc(1);

  cobegin {
    a1: *shared = 41;
    a2: var s = scratch(7);
    a3: *handoff = s;
  } || {
    a4: var v = *shared;
    a5: *private = v + 1;
    a6: var w = *private;
    a7: result = w;
  } coend

  result = result + *handoff;
}
`

func main() {
	a, err := core.Parse(kernel)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== placement report ==")
	fmt.Print(a.Placements("b1", "b2", "b3", "t1"))

	fmt.Println("\n== why ==")
	fmt.Println("b1: written by arm 0, read by arm 1 → must be visible to both")
	fmt.Println("b2: touched only by arm 1 → processor-local")
	fmt.Println("b3: written in arm 0, read by main after the join → shared lineage level")
	fmt.Println("t1: never leaves scratch()'s activation → stack-allocatable")

	fmt.Println("\n== side effects of scratch ==")
	se, err := a.SideEffects("scratch")
	if err != nil {
		log.Fatal(err)
	}
	if len(se) == 0 {
		fmt.Println("none: scratch only touches objects it created (pure in the §5.1 sense)")
	}
	for _, e := range se {
		fmt.Printf("  %s %s\n", e.Kind, e.Loc.Format(a.Prog))
	}

	fmt.Println("\n== deallocation lists ([Har89]) ==")
	for _, dl := range a.DeallocationLists() {
		fmt.Printf("  %s\n", dl)
	}
}
