// Abstractpipeline: the paper's scaling story. Exhaustive exploration is
// exact but exponential; the abstract interpretation (§4/§6) folds the
// state space and still supports the same analyses. This example runs the
// abstract pipeline end to end on one program: domain comparison,
// program-point invariants, dead-code detection, abstract footprints, and
// a parallelization decided WITHOUT any concrete exploration.
//
// Run with: go run ./examples/abstractpipeline
package main

import (
	"fmt"
	"log"

	"psa/internal/absdom"
	"psa/internal/abssem"
	"psa/internal/apps"
	"psa/internal/core"
)

const program = `
var mode;      // set by the environment thread: 0 or 1
var lo; var hi;
var sumA; var sumB;

func accumulate(base) {
  var acc = 0;
  var i = 0;
  while i < 4 {
    acc = acc + base + i;
    i = i + 1;
  }
  return acc;
}

func main() {
  cobegin { mode = 0; } || { mode = 1; } coend

  if mode == 0 { lo = 10; } else { lo = 20; }
  if mode == 2 { dead: hi = 99; } else { hi = lo + 5; }

  s1: sumA = accumulate(lo);
  s2: sumB = accumulate(hi);
}
`

func main() {
	a, err := core.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== abstract interpretation across domains ==")
	for _, d := range []absdom.NumDomain{absdom.ConstDomain{}, absdom.SignDomain{}, absdom.IntervalDomain{}} {
		res := a.AbstractWith(core.AbstractOptions{Domain: d})
		lo, _ := res.GlobalInvariant("lo")
		sum, _ := res.GlobalInvariant("sumA")
		fmt.Printf("  %-8s lo=%-12s sumA=%s\n", d.Name()+":", lo, sum)
	}

	fmt.Println("\n== program-point invariants (interval domain) ==")
	res := a.AbstractWith(core.AbstractOptions{Domain: absdom.IntervalDomain{}})
	for _, g := range []string{"mode", "lo", "hi"} {
		if v, ok := res.GlobalAt("s1", g); ok {
			fmt.Printf("  at s1: %s = %s\n", g, v)
		}
	}

	fmt.Println("\n== dead code ==")
	un := res.Unreachable()
	if len(un) == 0 {
		fmt.Println("  none")
	}
	for _, s := range un {
		fmt.Printf("  unreachable: %s at %s (mode == 2 is impossible)\n", s.Label(), s.NodePos())
	}

	fmt.Println("\n== parallelization from abstract footprints alone ==")
	fres := abssem.Analyze(a.Prog, abssem.Options{
		Domain:            absdom.ConstDomain{},
		CollectFootprints: true,
	})
	sched := apps.ParallelizeAbstract(fres, "s1", "s2")
	fmt.Printf("  %s\n", sched)
	fmt.Println("  (s1 and s2 only read disjoint globals and write disjoint sums)")

	fmt.Println("\n== cost comparison ==")
	conc := a.Explore(core.ExploreOptions{Reduction: core.Full})
	fmt.Printf("  concrete configurations: %d\n", conc.States)
	fmt.Printf("  abstract configurations: %d (Taylor-folded)\n", res.States)
}
