// Deadlock: Taylor-style infinite-wait detection [Tay83], the earliest
// ancestor of the paper's framework. Two workers synchronize with flags;
// a refactoring swapped the wait and the publish in one of them, so each
// now waits for a flag only the other would set afterwards. Exhaustive
// exploration proves that every execution enters a configuration from
// which termination is impossible, and prints a schedule driving the
// program into the trap.
//
// Run with: go run ./examples/deadlock
package main

import (
	"fmt"
	"log"
	"os"

	"psa/internal/core"
)

const buggy = `
var readyA; var readyB; var done;

func main() {
  cobegin {
    // Worker A: waits for B before publishing its own readiness. BUG:
    // the publish was supposed to come first.
    wa: while readyB == 0 { skip; }
    readyA = 1;
  } || {
    // Worker B: same bug, mirrored.
    wb: while readyA == 0 { skip; }
    readyB = 1;
  } coend
  done = 1;
}
`

const fixed = `
var readyA; var readyB; var done;

func main() {
  cobegin {
    readyA = 1;
    wa: while readyB == 0 { skip; }
  } || {
    readyB = 1;
    wb: while readyA == 0 { skip; }
  } coend
  done = 1;
}
`

func main() {
	for _, v := range []struct{ name, src string }{{"buggy", buggy}, {"fixed", fixed}} {
		a, err := core.Parse(v.src)
		if err != nil {
			log.Fatal(err)
		}
		res := a.Explore(core.ExploreOptions{Reduction: core.Full, KeepGraph: true})
		div := res.Graph.Divergent()
		fmt.Printf("== %s version ==\n", v.name)
		fmt.Printf("  %s\n", res)
		fmt.Printf("  divergent configurations: %d of %d\n", len(div), res.States)
		switch {
		case len(res.Terminals) == 0:
			fmt.Println("  verdict: DEADLOCK — no execution terminates")
			if tr, ok := res.Graph.TraceTo(div[0]); ok {
				if len(tr) == 0 {
					fmt.Println("  the initial configuration is already trapped: no schedule escapes")
				} else {
					fmt.Println("  one schedule into the trap:")
					for _, s := range tr {
						fmt.Printf("    proc %s: %s\n", s.Proc, s.Stmt)
					}
				}
			}
		case len(div) > 0:
			fmt.Println("  verdict: SOME schedules never terminate")
		default:
			fmt.Println("  verdict: every reachable configuration can still terminate")
		}
		fmt.Println()
	}

	// Emit the buggy graph for inspection with graphviz.
	a, _ := core.Parse(buggy)
	res := a.Explore(core.ExploreOptions{Reduction: core.Full, KeepGraph: true})
	f, err := os.CreateTemp("", "deadlock-*.dot")
	if err == nil {
		if err := res.Graph.WriteDOT(f, "deadlock"); err == nil {
			fmt.Printf("configuration graph written to %s (render with: dot -Tsvg)\n", f.Name())
		}
		f.Close()
	}
}
