// Quickstart: parse a small cobegin program, explore its state space with
// and without the paper's reductions, enumerate the reachable outcomes,
// and report access anomalies.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"psa/internal/core"
	"psa/internal/lang"
)

const program = `
// Two threads race on a shared counter while a third publishes a flag.
var counter;
var flag;
var seen;

func bump() {
  c1: counter = counter + 1;
  return 0;
}

func main() {
  cobegin {
    a1: bump();
  } || {
    a2: bump();
  } || {
    a3: flag = 1;
  } coend
  seen = counter;
}
`

func main() {
	a, err := core.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== program ==")
	fmt.Print(a.Format())

	fmt.Println("\n== state space ==")
	full := a.Explore(core.ExploreOptions{Reduction: core.Full})
	reduced := a.Explore(core.ExploreOptions{Reduction: core.Stubborn, Coarsen: true})
	fmt.Printf("full exploration:      %s\n", full)
	fmt.Printf("stubborn + coarsening: %s\n", reduced)

	fmt.Println("\n== reachable final values of (counter, flag) ==")
	for _, o := range reduced.OutcomeSet("counter", "flag") {
		fmt.Printf("  counter=%d flag=%d\n", o[0], o[1])
	}
	fmt.Println("(counter=1 is the lost-update race: both bumps read 0)")

	fmt.Println("\n== access anomalies ==")
	for _, an := range a.Anomalies() {
		kind := "read/write"
		if an.WriteWrite {
			kind = "write/write"
		}
		fmt.Printf("  %s conflict between %s and %s on %s\n",
			kind, label(a.Prog, an.StmtA), label(a.Prog, an.StmtB), an.Loc)
	}
}

func label(p *core.Program, id lang.NodeID) string {
	if n := p.Node(id); n != nil {
		if s, ok := n.(lang.Stmt); ok {
			return lang.DescribeStmt(s)
		}
	}
	return fmt.Sprint(id)
}
